//! The concurrent serving layer: [`ViewService`] on top of
//! [`QueryEngine`].
//!
//! The paper's value proposition — answer `Qs` from materialized views
//! without touching `G` — only pays off at scale if the views are *served*
//! under concurrent traffic. `ViewService` is that facade: many client
//! threads submit batches of pattern queries against one shared service,
//! which
//!
//! * plans each query **once** per (query, view-set) pair — a plan cache
//!   keyed by `(query fingerprint, view-set fingerprint)` turns repeated
//!   queries into a hash lookup (the plan IR is immutable and shared by
//!   `Arc`);
//! * **answers repeated queries across batches without executing** — a
//!   byte-budgeted, LRU-evicted **result cache** keyed by `(query
//!   fingerprint, view-set fingerprint, calibration epoch)` replays the answer
//!   computed the first time (the memo-over-recompute move the paper makes
//!   for views, applied one level up the stack); entries hold the *frozen
//!   columnar* form, so the byte budget bounds actual residency, and a hit
//!   thaws — an O(answer) copy in place of a plan + fixpoint execution;
//!   every entry is stamped with the **epoch set** of the views its plan
//!   actually read (plus the graph epoch when it read `G`), so an
//!   [`EdgeDelta`] to view *A* invalidates
//!   exactly the answers that read *A* — answers reading only other views
//!   keep hitting across the delta, which is the point of delta-maintained
//!   serving: an update never colds the whole cache, let alone forces a
//!   rebuild;
//! * **remembers refusals**: a strict (`g = None`) call that fails with
//!   [`ServiceError::NeedsGraph`] records a negative entry keyed by the
//!   query fingerprint and stamped `(view-set fingerprint, max epoch,
//!   calibration epoch)`, so repeating the same refused query skips the
//!   plan cache and the planner entirely until the store moves;
//! * **deduplicates identical queries inside a batch**, executing each
//!   distinct query once and fanning the result out;
//! * executes against a lock-free
//!   [`StoreSnapshot`] of the sharded
//!   [`ViewStore`], rebuilding its internal [`QueryEngine`] only when the
//!   store version moves or a recalibration
//!   ([`ServiceConfig::recalibrate_every`]) changes the cost model — a
//!   rebuild shares the snapshot's extensions by `Arc`
//!   ([`QueryEngine::from_snapshot`]), so it costs O(card(V)) handle
//!   clones, never a deep copy of the materialized pairs;
//! * keeps service-level statistics: plan- and result-cache hit rates,
//!   per-shard occupancy, in-flight queue depth, a log₂ latency histogram,
//!   and the calibration state (active weights, sample count, drift).
//!
//! Answers are **byte-identical** to calling
//! [`QueryEngine::answer`] sequentially (asserted by `tests/service.rs`):
//! caching and concurrency change wall-clock, never results.
//!
//! ```
//! use gpv_core::service::ViewService;
//! use gpv_core::store::ViewStore;
//! use gpv_core::view::{ViewDef, ViewSet};
//! use gpv_graph::GraphBuilder;
//! use gpv_pattern::PatternBuilder;
//! use std::sync::Arc;
//!
//! let mut b = GraphBuilder::new();
//! let pm = b.add_node(["PM"]);
//! let dba = b.add_node(["DBA"]);
//! b.add_edge(pm, dba);
//! let g = b.build();
//!
//! let mut p = PatternBuilder::new();
//! let u0 = p.node_labeled("PM");
//! let u1 = p.node_labeled("DBA");
//! p.edge(u0, u1);
//! let q = p.build().unwrap();
//!
//! let views = ViewSet::new(vec![ViewDef::new("pm-dba", q.clone())]);
//! let store = Arc::new(ViewStore::materialize(views, &g, 4));
//! let service = ViewService::new(store);
//!
//! // Duplicate queries in one batch: planned once, answered identically.
//! let answers = service.serve_batch(&[q.clone(), q.clone()], None);
//! assert_eq!(answers.len(), 2);
//! let a0 = answers[0].as_ref().unwrap();
//! let a1 = answers[1].as_ref().unwrap();
//! assert_eq!(a0.result, a1.result);
//! assert!(service.stats().queries == 2);
//! ```

use crate::compact::CompactView;
use crate::cost::{CostModel, SharedCostLog};
use crate::delta::EdgeDelta;
use crate::engine::{EngineConfig, EngineError, QueryEngine};
use crate::matchjoin::{JoinError, JoinStats};
use crate::plan::{CacheDisposition, QueryPlan};
use crate::store::{DeltaReport, ShardOccupancy, StoreError, StoreSnapshot, ViewStore};
use gpv_graph::DataGraph;
use gpv_matching::result::MatchResult;
use gpv_pattern::Pattern;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Canonical serialized form of a query — the equality witness stored next
/// to every fingerprint-keyed cache entry (FNV-1a is not collision-proof,
/// so a hash hit is confirmed by comparing this string).
fn query_key(q: &Pattern) -> String {
    serde_json::to_string(q).expect("patterns serialize")
}

/// A stable structural fingerprint of a pattern query: FNV-1a over its
/// canonical JSON serialization. Structurally identical queries (same
/// nodes, predicates, edges, bounds, in the same order) collide by
/// construction — that is what lets the service recognize "the same query
/// again" across clients. Distinct queries can collide (64-bit non-crypto
/// hash); the service's caches therefore confirm every fingerprint hit
/// with a structural equality check before reusing anything.
pub fn query_fingerprint(q: &Pattern) -> u64 {
    crate::fnv::fnv1a(query_key(q).as_bytes())
}

/// The epoch-set stamp of an answer produced by `plan` against `snap`:
/// the maximum epoch over every view the plan reads, folding in the graph
/// epoch whenever the plan is not views-only (hybrid and direct executions
/// may scan `G`). Two snapshots agreeing on this stamp agree on every byte
/// the plan consumes, so the answer carries over; a delta touching a
/// consumed view (or the graph, for graph-reading plans) moves the stamp
/// and misses exactly — a delta to an *untouched* view leaves it valid.
fn plan_epoch_key(plan: &QueryPlan, snap: &StoreSnapshot) -> u64 {
    let epochs = snap.epochs();
    let mut key = 0u64;
    for idx in plan.view_indices() {
        // A position the snapshot does not have (membership skew — ruled
        // out by the view-set fingerprint in the cache key, but kept
        // defensive) poisons the stamp so the entry can never hit.
        key = key.max(epochs.get(idx).copied().unwrap_or(u64::MAX));
    }
    if plan.needs_graph() {
        key = key.max(snap.graph_epoch);
    }
    key
}

/// Number of log₂ latency buckets: bucket `i` counts queries whose latency
/// fell in `[2^(i-1), 2^i)` µs (bucket 0: `< 1` µs; the last bucket is the
/// unbounded `≥ 2^(LATENCY_BUCKETS-2)` µs overflow).
pub const LATENCY_BUCKETS: usize = 22;

/// A log₂ latency histogram snapshot (microsecond buckets).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts queries with latency in `[2^(i-1), 2^i)` µs
    /// (`buckets[0]`: `< 1` µs; the last bucket absorbs everything slower).
    pub buckets: [u64; LATENCY_BUCKETS],
}

/// What a [`LatencyHistogram`] quantile lookup can actually assert — the
/// explicit replacement for the old "`None` means either *no data* or
/// *overflow*" ambiguity. An overflow must never be squashed into a finite
/// bound: the histogram's last bucket is unbounded, so a quantile landing
/// there has **no** upper bound the histogram can vouch for (a p99 that
/// silently reported the previous bucket's bound would understate tail
/// latency by an arbitrary amount).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantileBound {
    /// The quantile is strictly under this many microseconds (the upper
    /// edge of its bucket).
    Under(u64),
    /// The quantile fell in the unbounded overflow bucket: all the
    /// histogram knows is that it is **at least** this many microseconds.
    Overflow(u64),
}

impl std::fmt::Display for QuantileBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantileBound::Under(us) => write!(f, "< {us} µs"),
            QuantileBound::Overflow(us) => write!(f, ">= {us} µs"),
        }
    }
}

impl LatencyHistogram {
    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `p`-quantile's bucket bound (`0.0 < p <= 1.0`; `p` above 1 is
    /// clamped to 1): [`QuantileBound::Under`] with the bucket's upper edge,
    /// or the explicit [`QuantileBound::Overflow`] marker when the quantile
    /// lands in the unbounded last bucket. `None` only when the histogram
    /// has no observations or `p` is not positive (a `p ≤ 0` — or NaN —
    /// quantile is meaningless: clamping used to produce `target = 0`,
    /// making `seen >= target` vacuously true and returning `Some(1)` even
    /// with zero observations in bucket 0).
    pub fn quantile(&self, p: f64) -> Option<QuantileBound> {
        let total = self.count();
        if total == 0 || p.is_nan() || p <= 0.0 {
            return None;
        }
        let target = (p.min(1.0) * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate().take(LATENCY_BUCKETS - 1) {
            seen += c;
            if seen >= target {
                return Some(QuantileBound::Under(1u64 << i));
            }
        }
        Some(QuantileBound::Overflow(1u64 << (LATENCY_BUCKETS - 2)))
    }

    /// Upper bound (µs) of the bucket containing the `p`-quantile. Returns
    /// `None` when [`Self::quantile`] has no answer *or* reports
    /// [`QuantileBound::Overflow`] — the histogram must never report a
    /// finite bound it does not have. Callers that need to distinguish
    /// "no data" from "unbounded tail" use [`Self::quantile`] directly.
    /// Coarse by design: a `Some(x)` answers "the quantile is under `x`
    /// µs", not "the quantile is `x`".
    pub fn quantile_upper_micros(&self, p: f64) -> Option<u64> {
        match self.quantile(p) {
            Some(QuantileBound::Under(us)) => Some(us),
            Some(QuantileBound::Overflow(_)) | None => None,
        }
    }

    /// Human-readable bound for the `p`-quantile: `"< X µs"`, `">= X µs"`
    /// when it falls in the overflow bucket, or `"n/a"` with no
    /// observations or a non-positive `p`.
    pub fn quantile_label(&self, p: f64) -> String {
        match self.quantile(p) {
            Some(bound) => bound.to_string(),
            None => "n/a".into(),
        }
    }
}

fn bucket_of(micros: u64) -> usize {
    ((64 - micros.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Engine configuration applied to the planner/executor.
    pub engine: EngineConfig,
    /// Maximum cached plans; when full, the least-recently-used entry is
    /// evicted — hot entries survive a flood of distinct cold queries
    /// (`0` disables plan caching entirely).
    pub plan_cache_capacity: usize,
    /// Byte budget for the cross-batch **result** cache (`0` disables it).
    /// The plan cache skips planning; this cache skips *execution*: a
    /// repeated identical query at an unchanged store version and
    /// calibration epoch returns the shared `Arc<MatchResult>` computed the
    /// first time. When an insertion pushes the estimated resident bytes
    /// over the budget, least-recently-used entries are evicted until it
    /// fits (an answer larger than the whole budget is simply not cached).
    pub result_cache_bytes: usize,
    /// Re-fit the cost weights from the measured [`CostSample`](crate::cost::CostSample)
    /// log every this many **executed** queries (`0` disables
    /// recalibration). A re-fit that changes the weights invalidates cached
    /// plans *and results* and rebuilds the engine snapshot, so subsequent
    /// planning is priced in measured units.
    ///
    /// Only queries that actually plan-and-execute count toward the
    /// cadence: dedup fan-outs and result-cache hits record no
    /// [`CostSample`](crate::cost::CostSample) (there is nothing new to
    /// measure), so counting them — as the batch-counting cadence of PR 4
    /// did — made a fully cached steady state attempt pointless re-fits
    /// over an unchanged log every batch, and could rebuild the engine and
    /// cold both caches for noise. A hot cache now leaves the calibration
    /// machinery untouched; [`ServiceStats::cost_log_starved`] counts how
    /// many served queries fed it nothing.
    pub recalibrate_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            plan_cache_capacity: 4096,
            result_cache_bytes: 64 << 20,
            recalibrate_every: 0,
        }
    }
}

/// Errors surfaced to service clients. Unlike [`EngineError`] this is
/// `Clone`, so one failure can be fanned out to every duplicate of a
/// deduplicated query.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// The plan needs the data graph but the call supplied none
    /// (views-only serving of a not-fully-covered query).
    NeedsGraph,
    /// Executor failure (plan/extension mismatch).
    Join(JoinError),
    /// The supplied graph is not the one the store was materialized for.
    GraphMismatch {
        /// Fingerprint the store was materialized against.
        expected: u64,
        /// Fingerprint of the graph supplied now.
        actual: u64,
    },
    /// Any other engine-level failure, stringified.
    Engine(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NeedsGraph => {
                write!(f, "plan requires graph access but none was supplied")
            }
            ServiceError::Join(e) => write!(f, "join failed: {e}"),
            ServiceError::GraphMismatch { expected, actual } => write!(
                f,
                "store was materialized for graph {expected:#x}, not {actual:#x}"
            ),
            ServiceError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::NeedsGraph => ServiceError::NeedsGraph,
            EngineError::Join(j) => ServiceError::Join(j),
            EngineError::GraphMismatch { expected, actual } => {
                ServiceError::GraphMismatch { expected, actual }
            }
            other => ServiceError::Engine(other.to_string()),
        }
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        match e {
            StoreError::GraphMismatch { expected, actual } => {
                ServiceError::GraphMismatch { expected, actual }
            }
            other => ServiceError::Engine(other.to_string()),
        }
    }
}

/// One served answer: the result plus everything needed to EXPLAIN it.
#[derive(Clone, Debug)]
pub struct ServedAnswer {
    /// The query result (≡ [`QueryEngine::answer`]), shared by `Arc` with
    /// the result cache and every other consumer of the same answer —
    /// fanning a cached answer out copies a pointer, never the match sets.
    pub result: Arc<MatchResult>,
    /// The executed plan (shared with the plan cache; `Display` renders the
    /// EXPLAIN text).
    pub plan: Arc<QueryPlan>,
    /// Executor instrumentation (for a result-cache hit: the stats of the
    /// execution that originally produced the cached answer).
    pub join_stats: JoinStats,
    /// The query's fingerprint (the cache key component).
    pub query_fingerprint: u64,
    /// Whether the plan came from the plan cache.
    pub plan_cached: bool,
    /// Whether the *answer* came from the cross-batch result cache (no
    /// planning or execution in this call).
    pub result_cached: bool,
    /// Whether the answer was copied from an identical query earlier in
    /// the same batch (no cache probe, planning, or execution at all).
    pub deduplicated: bool,
    /// End-to-end service latency for this query, in microseconds.
    pub latency_micros: u64,
}

impl ServedAnswer {
    /// The per-query cache disposition: which (if any) caching layer
    /// satisfied this query.
    pub fn disposition(&self) -> CacheDisposition {
        if self.deduplicated {
            CacheDisposition::Deduplicated
        } else if self.result_cached {
            CacheDisposition::ResultCache
        } else if self.plan_cached {
            CacheDisposition::PlanCache
        } else {
            CacheDisposition::Planned
        }
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Clone, Debug)]
pub struct ServiceStats {
    /// Queries served (including deduplicated ones).
    pub queries: u64,
    /// Batches accepted.
    pub batches: u64,
    /// Plan-cache hits.
    pub plan_cache_hits: u64,
    /// Plan-cache misses (each miss plans and populates the cache).
    pub plan_cache_misses: u64,
    /// Plans currently cached.
    pub plan_cache_size: usize,
    /// `hits / (hits + misses)`, 0.0 before any planning.
    pub plan_cache_hit_rate: f64,
    /// Result-cache hits (answers served without planning or executing).
    pub result_cache_hits: u64,
    /// Result-cache misses (the query was planned/executed; successful
    /// answers populate the cache).
    pub result_cache_misses: u64,
    /// Answers currently cached.
    pub result_cache_size: usize,
    /// Estimated resident bytes of the cached answers (the quantity the
    /// [`ServiceConfig::result_cache_bytes`] budget bounds).
    pub result_cache_bytes: usize,
    /// `hits / (hits + misses)`, 0.0 before any probe.
    pub result_cache_hit_rate: f64,
    /// Answers evicted to stay within the byte budget.
    pub result_cache_evictions: u64,
    /// Strict-mode queries refused straight from the negative
    /// `NeedsGraph` cache — no plan-cache probe, no planning.
    pub refusal_hits: u64,
    /// Refusals currently remembered (bounded by a fixed cap, not the
    /// byte budget — negative entries carry no answer payload).
    pub refusal_cache_size: usize,
    /// Queries answered by intra-batch deduplication.
    pub dedup_saved: u64,
    /// Queries that actually planned and executed (the
    /// [`ServiceConfig::recalibrate_every`] cadence counts these only).
    pub executed_queries: u64,
    /// Queries served without executing (dedup fan-outs + result-cache
    /// hits): each recorded **no**
    /// [`CostSample`](crate::cost::CostSample), so a high ratio of this to
    /// [`Self::queries`] means the calibration loop is running on old
    /// measurements — by design, since there is nothing new to measure.
    pub cost_log_starved: u64,
    /// Times the engine snapshot was rebuilt because the store changed.
    pub engine_rebuilds: u64,
    /// Queries currently in flight (the queue-depth gauge).
    pub in_flight: u64,
    /// High-water mark of [`Self::in_flight`].
    pub max_in_flight: u64,
    /// Per-shard occupancy of the backing store.
    pub shard_occupancy: Vec<ShardOccupancy>,
    /// Log₂ latency histogram over all served queries.
    pub latency: LatencyHistogram,
    /// The active cost model (calibrated when a re-fit has been applied).
    pub cost_model: CostModel,
    /// Estimate-vs-actual samples currently retained in the cost log.
    pub cost_samples: usize,
    /// Calibration drift: mean relative error of the active weights'
    /// predictions against the measured executions (`None` before any
    /// execution). Rising drift under a calibrated model means the
    /// workload shifted and the next re-fit will move the weights.
    pub estimate_error: Option<f64>,
    /// Times a re-fit changed the weights (each one invalidated the plan
    /// cache and rebuilt the engine snapshot).
    pub recalibrations: u64,
}

/// Internal atomic counters (one cache line of independently-updated
/// gauges; contention-tolerant, never locked).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    batches: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    result_evictions: AtomicU64,
    dedup_saved: AtomicU64,
    /// Queries that planned and executed (drives the recalibration cadence).
    executed: AtomicU64,
    /// Queries served from dedup or the result cache — no `CostSample`.
    starved: AtomicU64,
    /// Strict-mode queries refused straight from the negative cache.
    refusal_hits: AtomicU64,
    /// `executed` watermark at the last recalibration attempt.
    last_recalib_executed: AtomicU64,
    engine_rebuilds: AtomicU64,
    recalibrations: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

/// The engine snapshot the service executes against, tagged with the store
/// version and the calibration epoch it was built from. Carries the MVCC
/// [`StoreSnapshot`] it was built over so cache probes can price an
/// answer's epoch-set stamp without re-touching the store.
#[derive(Clone, Debug)]
struct EngineSnapshot {
    version: u64,
    calib_epoch: u64,
    view_fingerprint: u64,
    store: Arc<StoreSnapshot>,
    engine: Arc<QueryEngine>,
}

/// A concurrent, batch-oriented query-serving facade over a sharded
/// [`ViewStore`]. Shared by reference across client threads (`&self`
/// everywhere); see the [module docs](self) for the full contract.
#[derive(Debug)]
pub struct ViewService {
    store: Arc<ViewStore>,
    config: ServiceConfig,
    engine: RwLock<Option<EngineSnapshot>>,
    /// Keyed by `(query fingerprint, view-set fingerprint)`; each entry
    /// keeps the query's canonical JSON so a fingerprint collision is
    /// detected by equality instead of silently serving the wrong plan.
    plan_cache: RwLock<PlanCache>,
    /// Cross-batch answers, keyed by `(query fingerprint, view-set
    /// fingerprint, calibration epoch)` and validated per-hit against the
    /// entry's epoch-set stamp — the same collision-witness discipline as
    /// the plan cache, byte-budgeted
    /// ([`ServiceConfig::result_cache_bytes`]).
    result_cache: RwLock<ResultCache>,
    /// The estimate-vs-actual history, shared into every rebuilt engine so
    /// recalibration sees all measurements, not just the latest snapshot's.
    cost_log: SharedCostLog,
    /// The last applied re-fit (`None` = still on the configured weights).
    calibrated: RwLock<Option<CostModel>>,
    /// Bumped whenever a re-fit changes the weights, invalidating the
    /// engine snapshot (same mechanism as a store-version move).
    calib_epoch: AtomicU64,
    counters: Counters,
}

/// One cached plan: the canonical query JSON (the fingerprint-collision
/// witness), the shared plan, the calibration epoch it was priced under
/// (an in-flight batch holding a pre-recalibration engine could otherwise
/// re-insert a stale-weights plan *after* the recalibration clear, and the
/// key alone would serve it forever), and an LRU stamp updated on hits.
#[derive(Debug)]
struct PlanCacheEntry {
    qkey: Arc<str>,
    plan: Arc<QueryPlan>,
    epoch: u64,
    last_used: AtomicU64,
}

/// `(query fingerprint, view-set fingerprint)` → cached plan, with
/// least-recently-used eviction at capacity (a flood of distinct cold
/// queries evicts only the coldest entries, never the hot ones).
#[derive(Debug, Default)]
struct PlanCache {
    map: HashMap<(u64, u64), PlanCacheEntry>,
    /// Monotonic LRU clock (ticked under the read lock on hits).
    clock: AtomicU64,
}

impl PlanCache {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Marks an entry as just-used.
    fn touch(&self, entry: &PlanCacheEntry) {
        entry.last_used.store(self.tick(), Ordering::Relaxed);
    }

    /// Removes the least-recently-used entry. The scan is O(capacity), but
    /// an eviction only ever happens on a cache *miss*, which has just paid
    /// for a full `QueryEngine::plan` (view-match simulations over every
    /// registered view) — orders of magnitude more than one pass over the
    /// bounded map's `u64` stamps — so exact LRU costs a rounding error per
    /// miss and never makes any entry immortal (sampled/windowed schemes
    /// trade that guarantee away for savings that don't show up here).
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| *k);
        if let Some(k) = victim {
            self.map.remove(&k);
        }
    }
}

/// Fixed per-entry bookkeeping the budget charges on top of the frozen
/// columns: the map entry, the `Arc` headers, the plan handle, the stats.
const RESULT_ENTRY_OVERHEAD: usize = 128;

/// Resident bytes of one cached answer. Entries store the *frozen* columnar
/// form, so this is [`CompactView::resident_bytes`] — the exact column
/// bytes, no boxed per-set `Vec` headers or allocator scatter to guess at —
/// plus the entry's own bookkeeping ([`RESULT_ENTRY_OVERHEAD`]) and its
/// collision-witness key. The configured budget therefore bounds what the
/// cache actually keeps resident, not just the logical pair count.
fn result_entry_bytes(compact: &CompactView, qkey: &str) -> usize {
    compact.resident_bytes() + qkey.len() + RESULT_ENTRY_OVERHEAD
}

/// One cached answer. `qkey` is the canonical-JSON collision witness (same
/// discipline as the plan cache: a fingerprint hit counts only when the
/// canonical forms match). `graph_free` records whether this answer is
/// servable without graph access — a plan that *may* read `G`
/// ([`QueryPlan::graph_optional`] false) must not satisfy a strict
/// views-only (`g = None`) call that would otherwise have failed with
/// [`ServiceError::NeedsGraph`]: the cache must never change which queries
/// a serving mode accepts, only how fast it answers them.
#[derive(Debug)]
struct ResultCacheEntry {
    qkey: Arc<str>,
    /// The answer in frozen columnar form — half the footprint of the boxed
    /// result and exactly accounted by `bytes`; a hit thaws it back.
    compact: Arc<CompactView>,
    plan: Arc<QueryPlan>,
    join_stats: JoinStats,
    graph_free: bool,
    /// The epoch-set stamp ([`plan_epoch_key`]) of the snapshot the answer
    /// was computed against. A probe recomputes the stamp from `plan`
    /// against the *current* snapshot and hits only on equality: every
    /// view (and, for graph-reading plans, the graph) this answer depends
    /// on is then bit-identical, so the answer still holds.
    epoch_key: u64,
    bytes: usize,
    last_used: AtomicU64,
}

/// Refusal entries older than this stamp can never hit; see
/// [`ResultCache::refusals`].
type RefusalStamp = (u64, u64, u64);

/// Hard cap on remembered refusals: unlike positive entries they carry no
/// byte-accounted payload, so a flood of distinct uncovered queries is
/// bounded by count instead (the map resets wholesale at the cap — a
/// refusal costs one wasted replan, not a correctness risk).
const REFUSAL_CACHE_CAP: usize = 4096;

/// The cross-batch result cache: `(query fingerprint, view-set
/// fingerprint, calibration epoch)` → answer, bounded by an estimated-byte
/// budget with LRU eviction.
///
/// Invalidation is *exact at view granularity*: a hit additionally
/// requires the entry's epoch-set stamp to match the current snapshot
/// ([`ResultCacheEntry::epoch_key`]), so an [`EdgeDelta`] invalidates
/// precisely the answers whose plans read a changed view (or the graph) —
/// answers over untouched views survive the mutation. A view-set
/// membership change or an applied re-fit changes the key itself. Dead
/// entries are purged wholesale when the engine snapshot rebuilds
/// ([`ViewService::engine`]), so an invalidation also releases its budget
/// immediately instead of waiting for LRU pressure.
#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<(u64, u64, u64), ResultCacheEntry>,
    /// Negative entries: queries refused with
    /// [`ServiceError::NeedsGraph`] in strict (`g = None`) mode, keyed by
    /// query fingerprint with the canonical form as collision witness.
    /// Valid only under [`Self::refusal_stamp`]; a repeat hit returns the
    /// refusal without probing the plan cache or planning. Whether views
    /// cover a query is decided by pattern containment — but the stamp
    /// still folds in the max epoch, so any store movement (not just
    /// membership change) conservatively re-plans refused queries once.
    refusals: HashMap<u64, Arc<str>>,
    /// `(view-set fingerprint, max epoch, calibration epoch)` the current
    /// [`Self::refusals`] entries were recorded under; the map is cleared
    /// whenever the basis moves.
    refusal_stamp: RefusalStamp,
    /// Estimated resident bytes across all entries.
    bytes: usize,
    /// Monotonic LRU clock (ticked under the read lock on hits).
    clock: AtomicU64,
}

impl ResultCache {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Marks an entry as just-used.
    fn touch(&self, entry: &ResultCacheEntry) {
        entry.last_used.store(self.tick(), Ordering::Relaxed);
    }

    /// Drops every entry that can never hit again under the freshly
    /// published snapshot — wrong view-set fingerprint, wrong calibration
    /// epoch, or an epoch-set stamp some consumed view (or the graph) has
    /// moved past. Called on engine rebuild. Entries whose stamps *are*
    /// still current survive: that is what keeps answers over untouched
    /// views warm across a delta. Refusals are cleared when their stamp
    /// basis moved.
    fn purge_stale(&mut self, snap: &StoreSnapshot, calib_epoch: u64) {
        let mut freed = 0usize;
        self.map.retain(|&(_, vfp, ce), entry| {
            let keep = vfp == snap.fingerprint
                && ce == calib_epoch
                && plan_epoch_key(&entry.plan, snap) == entry.epoch_key;
            if !keep {
                freed += entry.bytes;
            }
            keep
        });
        self.bytes -= freed;
        let basis = (snap.fingerprint, snap.max_epoch(), calib_epoch);
        if self.refusal_stamp != basis {
            self.refusals.clear();
            self.refusal_stamp = basis;
        }
    }

    /// Evicts least-recently-used entries until the resident estimate fits
    /// `budget`. Same exact-LRU rationale as the plan cache: eviction only
    /// runs on the insert path, which has just paid for a full plan *and*
    /// execution, so an O(entries) stamp scan is a rounding error.
    fn evict_to(&mut self, budget: usize) -> u64 {
        let mut evicted = 0u64;
        while self.bytes > budget && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            if let Some(k) = victim {
                if let Some(e) = self.map.remove(&k) {
                    self.bytes -= e.bytes;
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

impl ViewService {
    /// A service over `store` with the default configuration.
    pub fn new(store: Arc<ViewStore>) -> Self {
        Self::with_config(store, ServiceConfig::default())
    }

    /// A service over `store` with explicit tuning.
    pub fn with_config(store: Arc<ViewStore>, config: ServiceConfig) -> Self {
        ViewService {
            store,
            config,
            engine: RwLock::new(None),
            plan_cache: RwLock::new(PlanCache::default()),
            result_cache: RwLock::new(ResultCache::default()),
            cost_log: SharedCostLog::default(),
            calibrated: RwLock::new(None),
            calib_epoch: AtomicU64::new(0),
            counters: Counters::default(),
        }
    }

    /// The backing store (register/retire views through this; the service
    /// picks membership changes up on the next batch).
    pub fn store(&self) -> &Arc<ViewStore> {
        &self.store
    }

    /// Applies an edge-delta batch to the backing store between serving
    /// batches. Affected views are delta-maintained
    /// ([`ViewStore::apply_delta`]) — never rebuilt from scratch — and the
    /// new world is published atomically: batches already in flight keep
    /// executing against their MVCC snapshot, the next batch picks the
    /// post-delta snapshot up lazily. Cached answers whose plans read only
    /// views the delta never touched remain valid and keep hitting; the
    /// caller should adopt [`DeltaReport::graph`] as the current graph.
    pub fn apply_delta(
        &self,
        delta: &EdgeDelta,
        g: &DataGraph,
    ) -> Result<DeltaReport, ServiceError> {
        self.store.apply_delta(delta, g).map_err(ServiceError::from)
    }

    /// The cost model planning should run under: the last applied re-fit,
    /// or the configured weights before any calibration.
    fn active_cost_model(&self) -> CostModel {
        self.calibrated
            .read()
            .expect("calibration lock poisoned")
            .unwrap_or(self.config.engine.cost)
    }

    /// Current engine snapshot, rebuilding if the store version moved or a
    /// recalibration changed the active cost model.
    fn engine(&self) -> EngineSnapshot {
        let version = self.store.version();
        let epoch = self.calib_epoch.load(Ordering::Relaxed);
        let valid = |s: &&EngineSnapshot| s.version == version && s.calib_epoch == epoch;
        if let Some(snap) = self
            .engine
            .read()
            .expect("engine lock poisoned")
            .as_ref()
            .filter(valid)
        {
            return snap.clone();
        }
        let mut guard = self.engine.write().expect("engine lock poisoned");
        // Another thread may have rebuilt while we waited for the lock.
        let version = self.store.version();
        let epoch = self.calib_epoch.load(Ordering::Relaxed);
        if let Some(snap) = guard
            .as_ref()
            .filter(|s| s.version == version && s.calib_epoch == epoch)
        {
            return snap.clone();
        }
        let store_snap = self.store.snapshot();
        let mut config = self.config.engine.clone();
        config.cost = self.active_cost_model();
        let engine = QueryEngine::from_snapshot(&store_snap)
            .with_config(config)
            .with_cost_log(self.cost_log.clone());
        let snap = EngineSnapshot {
            version: store_snap.version,
            calib_epoch: epoch,
            view_fingerprint: store_snap.fingerprint,
            store: store_snap,
            engine: Arc::new(engine),
        };
        self.counters
            .engine_rebuilds
            .fetch_add(1, Ordering::Relaxed);
        *guard = Some(snap.clone());
        // Results whose keys or epoch-set stamps this rebuild obsoleted can
        // never hit again — release their budget now instead of letting
        // dead entries squat until LRU pressure finds them. Entries whose
        // stamps survived (answers over views the mutation never touched)
        // stay resident and keep hitting.
        if self.config.result_cache_bytes > 0 {
            self.result_cache
                .write()
                .expect("result cache lock poisoned")
                .purge_stale(&snap.store, snap.calib_epoch);
        }
        snap
    }

    /// Whether two fits are close enough to count as converged. A fit over
    /// an ever-growing log moves in low-order float bits on *every* batch;
    /// exact equality would therefore re-install, drop the plan cache, and
    /// rebuild the engine each batch under `recalibrate_every = 1` —
    /// permanently-cold caches in exchange for noise. Only a ≥5% move in
    /// some fitted weight is worth repricing plans over.
    fn converged(a: &CostModel, b: &CostModel) -> bool {
        let close =
            |x: f64, y: f64| (x - y).abs() <= 0.05 * x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
        close(a.read_pair, b.read_pair)
            && close(a.refine_pair, b.refine_pair)
            && close(a.scan_edge, b.scan_edge)
    }

    /// Re-fits the cost weights from the measured log when enough queries
    /// have *executed* since the last attempt
    /// ([`ServiceConfig::recalibrate_every`]). A fit that moves the weights
    /// installs itself, drops every cached plan (they were priced under the
    /// old weights) and invalidates the engine snapshot; a fit within
    /// tolerance of the active one is a no-op. Dedup fan-outs and
    /// result-cache hits never advance the cadence: they add no samples, so
    /// re-fitting on their account would grind the same log again — and, on
    /// the first ever fit, rebuild the engine and cold both caches in a
    /// steady state that executed nothing (the PR 4 caveat this closes).
    fn maybe_recalibrate(&self) {
        let every = self.config.recalibrate_every;
        if every == 0 {
            return;
        }
        let executed = self.counters.executed.load(Ordering::Relaxed);
        let last = self.counters.last_recalib_executed.load(Ordering::Relaxed);
        if executed.saturating_sub(last) < every {
            return;
        }
        // Two racing batches may both pass the gate; the CAS lets one
        // advance the watermark and the loser simply skips (the winner's
        // fit covers its samples too).
        if self
            .counters
            .last_recalib_executed
            .compare_exchange(last, executed, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        let Some(fitted) = self
            .active_cost_model()
            .calibrate(&self.cost_log.snapshot())
        else {
            return;
        };
        {
            let mut slot = self.calibrated.write().expect("calibration lock poisoned");
            if let Some(prev) = slot.as_ref() {
                if Self::converged(prev, &fitted) {
                    return; // keep serving with the installed weights
                }
            }
            *slot = Some(fitted);
        }
        self.plan_cache
            .write()
            .expect("plan cache lock poisoned")
            .map
            .clear();
        self.calib_epoch.fetch_add(1, Ordering::Relaxed);
        self.counters.recalibrations.fetch_add(1, Ordering::Relaxed);
    }

    /// The plan for `q` under view-set fingerprint `vfp`, from the cache
    /// when present. Returns `(plan, was_cached)`. A cache hit requires
    /// both the fingerprint *and* the canonical form `qkey` to match — a
    /// colliding distinct query is planned fresh (and left uncached, so
    /// the resident entry keeps working). At capacity the LRU entry is
    /// evicted (regression: the cache used to clear wholesale, so a
    /// sustained stream of distinct queries dumped the hot entries too).
    fn plan_for(
        &self,
        engine: &QueryEngine,
        vfp: u64,
        epoch: u64,
        qfp: u64,
        qkey: &str,
        q: &Pattern,
    ) -> (Arc<QueryPlan>, bool) {
        if self.config.plan_cache_capacity == 0 {
            self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
            return (Arc::new(engine.plan(q)), false);
        }
        let key = (qfp, vfp);
        {
            let cache = self.plan_cache.read().expect("plan cache lock poisoned");
            if let Some(entry) = cache.map.get(&key) {
                if *entry.qkey == *qkey && entry.epoch == epoch {
                    cache.touch(entry);
                    self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                    return (entry.plan.clone(), true);
                }
                if *entry.qkey != *qkey {
                    // Fingerprint collision with a different query: plan
                    // fresh, don't disturb the resident entry.
                    self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
                    return (Arc::new(engine.plan(q)), false);
                }
                // Same query, stale epoch: fall through and replace below.
            }
        }
        let plan = Arc::new(engine.plan(q));
        let mut cache = self.plan_cache.write().expect("plan cache lock poisoned");
        // Racing planners produce identical plans (planning is
        // deterministic), so last-writer-wins is safe; prefer the resident
        // entry to keep `Arc` identity stable for callers comparing plans.
        enum Resident {
            Fresh(Arc<QueryPlan>),
            Collision,
            Stale,
        }
        let resident = cache.map.get(&key).map(|e| {
            if *e.qkey != *qkey {
                Resident::Collision
            } else if e.epoch == epoch {
                Resident::Fresh(e.plan.clone())
            } else {
                Resident::Stale
            }
        });
        let entry = match resident {
            Some(Resident::Fresh(existing)) => existing,
            Some(Resident::Collision) => plan, // serve fresh, keep resident
            stale_or_vacant => {
                if stale_or_vacant.is_none() && cache.map.len() >= self.config.plan_cache_capacity {
                    cache.evict_lru();
                }
                let stamp = cache.tick();
                cache.map.insert(
                    key,
                    PlanCacheEntry {
                        qkey: Arc::from(qkey),
                        plan: plan.clone(),
                        epoch,
                        last_used: AtomicU64::new(stamp),
                    },
                );
                plan
            }
        };
        self.counters.plan_misses.fetch_add(1, Ordering::Relaxed);
        (entry, false)
    }

    fn record_latency(&self, micros: u64) {
        self.counters.latency[bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
    }

    /// Probes the cross-batch result cache for `qfp`/`qkey` at this engine
    /// snapshot. A hit requires the key `(fingerprint, view-set
    /// fingerprint, calibration epoch)` *and* the canonical form to match,
    /// *and* the entry's epoch-set stamp to still be current — every view
    /// (and, for graph-reading plans, the graph) the cached answer's plan
    /// consumed is then unchanged, so the answer holds even though the
    /// store version may have moved. For a views-only (`has_graph =
    /// false`) call the answer must additionally have been provably
    /// computable without the graph: caching must never let a strict call
    /// succeed where the uncached path would have returned
    /// [`ServiceError::NeedsGraph`]. Counts a hit or a miss per probe.
    fn cached_result(
        &self,
        snap: &EngineSnapshot,
        qfp: u64,
        qkey: &str,
        has_graph: bool,
    ) -> Option<ServedAnswer> {
        if self.config.result_cache_bytes == 0 {
            return None;
        }
        let hit = {
            let cache = self
                .result_cache
                .read()
                .expect("result cache lock poisoned");
            cache
                .map
                .get(&(qfp, snap.view_fingerprint, snap.calib_epoch))
                .filter(|e| {
                    *e.qkey == *qkey
                        && (has_graph || e.graph_free)
                        && plan_epoch_key(&e.plan, &snap.store) == e.epoch_key
                })
                .map(|e| {
                    cache.touch(e);
                    ServedAnswer {
                        result: Arc::new(e.compact.thaw()),
                        plan: e.plan.clone(),
                        join_stats: e.join_stats,
                        query_fingerprint: qfp,
                        plan_cached: false,
                        result_cached: true,
                        deduplicated: false,
                        latency_micros: 0,
                    }
                })
        };
        match &hit {
            Some(_) => self.counters.result_hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.result_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Caches a freshly-executed answer for cross-batch reuse (no-op when
    /// the cache is disabled or the answer alone exceeds the budget). A
    /// resident entry for the same query is replaced only when its
    /// epoch-set stamp went stale; a colliding distinct query is simply
    /// never cached, so the resident entry keeps serving its own query.
    fn cache_result(&self, snap: &EngineSnapshot, qfp: u64, qkey: &str, a: &ServedAnswer) {
        let budget = self.config.result_cache_bytes;
        if budget == 0 {
            return;
        }
        let compact = Arc::new(CompactView::freeze(&a.result));
        let bytes = result_entry_bytes(&compact, qkey);
        if bytes > budget {
            return;
        }
        let epoch_key = plan_epoch_key(&a.plan, &snap.store);
        let key = (qfp, snap.view_fingerprint, snap.calib_epoch);
        let mut cache = self
            .result_cache
            .write()
            .expect("result cache lock poisoned");
        // An in-flight batch can finish executing *after* the store moved
        // on and `engine()` already purged this batch's world: inserting
        // now would park a dead entry in the budget until the next purge.
        // Recheck against the *currently published* snapshot under the
        // same lock `purge_stale` runs under — if membership, the answer's
        // epoch set, or the calibration epoch moved, drop the insert. (A
        // mutation racing in right after this check still gets cleaned by
        // the purge on the next engine rebuild, which every later batch
        // performs.)
        let current = self.store.snapshot();
        if current.fingerprint != snap.view_fingerprint
            || plan_epoch_key(&a.plan, &current) != epoch_key
            || snap.calib_epoch != self.calib_epoch.load(Ordering::Relaxed)
        {
            return;
        }
        match cache.map.get(&key) {
            // A distinct colliding query or a still-fresh duplicate: keep
            // the resident entry (first writer wins on identical stamps).
            Some(e) if *e.qkey != *qkey || e.epoch_key == epoch_key => return,
            // Same query, stale stamp (a delta moved one of its views and
            // the answer was recomputed): replace, releasing the old bytes.
            Some(e) => {
                let stale = e.bytes;
                cache.bytes -= stale;
                cache.map.remove(&key);
            }
            None => {}
        }
        let stamp = cache.tick();
        cache.bytes += bytes;
        cache.map.insert(
            key,
            ResultCacheEntry {
                qkey: Arc::from(qkey),
                compact,
                plan: a.plan.clone(),
                join_stats: a.join_stats,
                graph_free: a.plan.graph_optional(),
                epoch_key,
                bytes,
                last_used: AtomicU64::new(stamp),
            },
        );
        let evicted = cache.evict_to(budget);
        if evicted > 0 {
            self.counters
                .result_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Whether `qfp`/`qkey` is a remembered [`ServiceError::NeedsGraph`]
    /// refusal still valid at this snapshot. Probed only for strict
    /// (`g = None`) calls: a hit short-circuits the plan cache and the
    /// planner — the refusal is replayed as-is. Counts a hit when it fires.
    fn cached_refusal(&self, snap: &EngineSnapshot, qfp: u64, qkey: &str) -> bool {
        if self.config.result_cache_bytes == 0 {
            return false;
        }
        let basis = (
            snap.view_fingerprint,
            snap.store.max_epoch(),
            snap.calib_epoch,
        );
        let hit = {
            let cache = self
                .result_cache
                .read()
                .expect("result cache lock poisoned");
            cache.refusal_stamp == basis && cache.refusals.get(&qfp).is_some_and(|k| **k == *qkey)
        };
        if hit {
            self.counters.refusal_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a strict-mode [`ServiceError::NeedsGraph`] refusal so the
    /// next identical strict call skips planning. Stamp-mismatched residue
    /// from an older store state is cleared first; at
    /// [`REFUSAL_CACHE_CAP`] the insert is dropped (bounded memory beats
    /// remembering one more refusal).
    fn cache_refusal(&self, snap: &EngineSnapshot, qfp: u64, qkey: &str) {
        if self.config.result_cache_bytes == 0 {
            return;
        }
        let basis = (
            snap.view_fingerprint,
            snap.store.max_epoch(),
            snap.calib_epoch,
        );
        let mut cache = self
            .result_cache
            .write()
            .expect("result cache lock poisoned");
        if cache.refusal_stamp != basis {
            // Entries from another basis can never hit; but only adopt the
            // *currently published* basis — a stale in-flight snapshot must
            // not clobber refusals recorded against a newer store.
            let published = self.store.snapshot();
            let current = (
                published.fingerprint,
                published.max_epoch(),
                self.calib_epoch.load(Ordering::Relaxed),
            );
            if basis != current {
                return;
            }
            cache.refusals.clear();
            cache.refusal_stamp = basis;
        }
        if cache.refusals.len() < REFUSAL_CACHE_CAP {
            cache.refusals.insert(qfp, Arc::from(qkey));
        }
    }

    /// Serves one query. `g` enables hybrid/direct fallback for queries the
    /// views do not fully cover; with `None` such queries fail with
    /// [`ServiceError::NeedsGraph`] (the strict Theorem-1 mode).
    pub fn serve(&self, q: &Pattern, g: Option<&DataGraph>) -> Result<ServedAnswer, ServiceError> {
        self.serve_batch(std::slice::from_ref(q), g)
            .pop()
            .expect("one query in, one answer out")
    }

    /// Serves a batch of queries, deduplicating identical ones. Answers are
    /// returned in input order; each equals what a sequential
    /// [`QueryEngine::answer`] (or
    /// [`QueryEngine::answer_from_views`] when `g` is `None`) would return.
    ///
    /// When `g` is supplied it must be the graph the store was
    /// materialized against — extensions from one graph say nothing about
    /// another. This is *checked* before the first plan in the batch that
    /// actually reads `G` (one `O(|E(G)|)` fingerprint, at most once per
    /// batch, and not at all for views-only traffic): such queries fail
    /// with [`ServiceError::GraphMismatch`] instead of computing garbage.
    /// Views-only plans never touch `g`, so they answer correctly (for the
    /// store's graph) regardless of what was passed.
    ///
    /// Callable concurrently from any number of threads.
    pub fn serve_batch(
        &self,
        queries: &[Pattern],
        g: Option<&DataGraph>,
    ) -> Vec<Result<ServedAnswer, ServiceError>> {
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .queries
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let depth = self
            .counters
            .in_flight
            .fetch_add(queries.len() as u64, Ordering::Relaxed)
            + queries.len() as u64;
        self.counters
            .max_in_flight
            .fetch_max(depth, Ordering::Relaxed);

        let snap = self.engine();
        // Lazily-computed graph validation, shared by every graph-reading
        // plan in this batch (views-only plans never pay for it).
        let mut graph_check: Option<Result<(), ServiceError>> = None;
        let mut check_graph = |g: &DataGraph| -> Result<(), ServiceError> {
            graph_check
                .get_or_insert_with(|| {
                    let actual = crate::storage::graph_fingerprint(g);
                    let expected = self.store.graph_fingerprint();
                    if actual == expected {
                        Ok(())
                    } else {
                        Err(ServiceError::GraphMismatch { expected, actual })
                    }
                })
                .clone()
        };
        // Fingerprint → (canonical form, answer). The canonical form is
        // compared on every hit so a colliding distinct query is computed
        // on its own instead of inheriting the wrong answer.
        let mut answered: HashMap<u64, (String, Result<ServedAnswer, ServiceError>)> =
            HashMap::with_capacity(queries.len());
        let mut out = Vec::with_capacity(queries.len());
        for q in queries {
            let t0 = Instant::now();
            let qkey = query_key(q);
            let qfp = crate::fnv::fnv1a(qkey.as_bytes());
            let dedup_hit = answered
                .get(&qfp)
                .filter(|(prev_key, _)| *prev_key == qkey)
                .map(|(_, prev)| prev.clone());
            let answer = match dedup_hit {
                Some(prev) => {
                    // Identical query earlier in this batch: fan its answer
                    // out without re-planning or re-executing (and without
                    // feeding the cost log — see `cost_log_starved`).
                    self.counters.dedup_saved.fetch_add(1, Ordering::Relaxed);
                    self.counters.starved.fetch_add(1, Ordering::Relaxed);
                    let micros = t0.elapsed().as_micros() as u64;
                    self.record_latency(micros);
                    prev.map(|mut a| {
                        a.deduplicated = true;
                        a.latency_micros = micros;
                        a
                    })
                }
                // Negative cache: a strict call repeating a remembered
                // NeedsGraph refusal is refused without touching the plan
                // cache or the planner at all.
                None if g.is_none() && self.cached_refusal(&snap, qfp, &qkey) => {
                    self.counters.starved.fetch_add(1, Ordering::Relaxed);
                    let micros = t0.elapsed().as_micros() as u64;
                    self.record_latency(micros);
                    let answer = Err(ServiceError::NeedsGraph);
                    answered
                        .entry(qfp)
                        .or_insert_with(|| (qkey, answer.clone()));
                    answer
                }
                // Cross-batch result cache: an identical query whose
                // epoch-set stamp is unchanged at this snapshot returns the
                // shared answer without planning or executing anything.
                None => match self.cached_result(&snap, qfp, &qkey, g.is_some()) {
                    Some(hit) => {
                        // Served without executing: no CostSample recorded,
                        // and the recalibration cadence must not advance.
                        self.counters.starved.fetch_add(1, Ordering::Relaxed);
                        // Mirror the uncached path's graph validation: a
                        // graph-reading plan supplied with the *wrong*
                        // graph fails with GraphMismatch there, and a warm
                        // cache must not mask that — caching changes
                        // latency, never which calls are accepted.
                        let validated = match (hit.plan.needs_graph(), g) {
                            (true, Some(g)) => check_graph(g).map(|()| hit),
                            _ => Ok(hit),
                        };
                        let micros = t0.elapsed().as_micros() as u64;
                        self.record_latency(micros);
                        let answer = validated.map(|mut a| {
                            a.latency_micros = micros;
                            a
                        });
                        answered
                            .entry(qfp)
                            .or_insert_with(|| (qkey, answer.clone()));
                        answer
                    }
                    None => {
                        let (plan, plan_cached) = self.plan_for(
                            &snap.engine,
                            snap.view_fingerprint,
                            snap.calib_epoch,
                            qfp,
                            &qkey,
                            q,
                        );
                        // Views-only plans execute with no graph at all;
                        // plans that do read G first validate it belongs to
                        // this store (once per batch). A graph-*optional*
                        // plan (a fully-covered cost-based hybrid) uses G
                        // when supplied and falls back to its view sources
                        // when not — calibration never costs strict-mode
                        // availability.
                        let exec = if plan.needs_graph() {
                            match g {
                                None if plan.graph_optional() => snap
                                    .engine
                                    .execute(q, &plan, None)
                                    .map_err(ServiceError::from),
                                None => Err(ServiceError::NeedsGraph),
                                Some(g) => check_graph(g).and_then(|()| {
                                    snap.engine
                                        .execute(q, &plan, Some(g))
                                        .map_err(ServiceError::from)
                                }),
                            }
                        } else {
                            snap.engine
                                .execute(q, &plan, None)
                                .map_err(ServiceError::from)
                        };
                        if exec.is_ok() {
                            // A real plan-and-execute: the only path that
                            // records a CostSample, and therefore the only
                            // one that advances the recalibration cadence.
                            self.counters.executed.fetch_add(1, Ordering::Relaxed);
                        }
                        let executed = exec.map(|(result, join_stats)| ServedAnswer {
                            result: Arc::new(result),
                            plan: plan.clone(),
                            join_stats,
                            query_fingerprint: qfp,
                            plan_cached,
                            result_cached: false,
                            deduplicated: false,
                            latency_micros: 0,
                        });
                        // Successful answers enter the result cache. A
                        // strict-mode NeedsGraph refusal enters the
                        // *negative* cache (keyed to strict calls only, so
                        // a later call with the graph supplied still
                        // executes); other failures (mismatches) are never
                        // remembered.
                        match &executed {
                            Ok(a) => self.cache_result(&snap, qfp, &qkey, a),
                            Err(ServiceError::NeedsGraph) if g.is_none() => {
                                self.cache_refusal(&snap, qfp, &qkey)
                            }
                            Err(_) => {}
                        }
                        let micros = t0.elapsed().as_micros() as u64;
                        self.record_latency(micros);
                        let executed = executed.map(|mut a| {
                            a.latency_micros = micros;
                            a
                        });
                        // First occurrence wins the dedup slot; a colliding
                        // later query simply never dedups.
                        answered
                            .entry(qfp)
                            .or_insert_with(|| (qkey, executed.clone()));
                        executed
                    }
                },
            };
            self.counters.in_flight.fetch_sub(1, Ordering::Relaxed);
            out.push(answer);
        }
        // Adaptive planning: between batches, re-fit the cost weights from
        // the measurements this batch just added (no-op unless
        // [`ServiceConfig::recalibrate_every`] is set).
        self.maybe_recalibrate();
        out
    }

    /// EXPLAIN for `q` against the current view set — the same plan text a
    /// served answer's `plan` renders, plus the cache-key fingerprints and
    /// the per-query cache disposition: whether the plan cache and the
    /// cross-batch result cache would serve this query right now.
    pub fn explain(&self, q: &Pattern) -> String {
        let snap = self.engine();
        let qkey = query_key(q);
        let qfp = crate::fnv::fnv1a(qkey.as_bytes());
        // Observability must not perturb what it observes: probe both
        // caches read-only (no hit/miss counters, no insertion, no LRU
        // touch) and plan fresh on a miss.
        let cached_plan = self
            .plan_cache
            .read()
            .expect("plan cache lock poisoned")
            .map
            .get(&(qfp, snap.view_fingerprint))
            .filter(|entry| *entry.qkey == *qkey && entry.epoch == snap.calib_epoch)
            .map(|entry| entry.plan.clone());
        let plan_cached = cached_plan.is_some();
        let result_cached = self
            .result_cache
            .read()
            .expect("result cache lock poisoned")
            .map
            .get(&(qfp, snap.view_fingerprint, snap.calib_epoch))
            .is_some_and(|entry| {
                *entry.qkey == *qkey && plan_epoch_key(&entry.plan, &snap.store) == entry.epoch_key
            });
        let plan = cached_plan.unwrap_or_else(|| Arc::new(snap.engine.plan(q)));
        format!(
            "{plan}\n  cache  : query {qfp:#018x} / views {:#018x} (plan {}, result {})",
            snap.view_fingerprint,
            if plan_cached { "hit" } else { "miss" },
            if result_cached { "hit" } else { "miss" }
        )
    }

    /// A point-in-time snapshot of all service counters.
    pub fn stats(&self) -> ServiceStats {
        let hits = self.counters.plan_hits.load(Ordering::Relaxed);
        let misses = self.counters.plan_misses.load(Ordering::Relaxed);
        let rhits = self.counters.result_hits.load(Ordering::Relaxed);
        let rmisses = self.counters.result_misses.load(Ordering::Relaxed);
        let (rsize, rbytes, refusals) = {
            let cache = self
                .result_cache
                .read()
                .expect("result cache lock poisoned");
            (cache.map.len(), cache.bytes, cache.refusals.len())
        };
        let active = self.active_cost_model();
        let log = self.cost_log.snapshot();
        let mut latency = LatencyHistogram::default();
        for (i, b) in self.counters.latency.iter().enumerate() {
            latency.buckets[i] = b.load(Ordering::Relaxed);
        }
        ServiceStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            plan_cache_hits: hits,
            plan_cache_misses: misses,
            plan_cache_size: self
                .plan_cache
                .read()
                .expect("plan cache lock poisoned")
                .map
                .len(),
            plan_cache_hit_rate: if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            },
            result_cache_hits: rhits,
            result_cache_misses: rmisses,
            result_cache_size: rsize,
            result_cache_bytes: rbytes,
            result_cache_hit_rate: if rhits + rmisses > 0 {
                rhits as f64 / (rhits + rmisses) as f64
            } else {
                0.0
            },
            result_cache_evictions: self.counters.result_evictions.load(Ordering::Relaxed),
            refusal_hits: self.counters.refusal_hits.load(Ordering::Relaxed),
            refusal_cache_size: refusals,
            dedup_saved: self.counters.dedup_saved.load(Ordering::Relaxed),
            executed_queries: self.counters.executed.load(Ordering::Relaxed),
            cost_log_starved: self.counters.starved.load(Ordering::Relaxed),
            engine_rebuilds: self.counters.engine_rebuilds.load(Ordering::Relaxed),
            in_flight: self.counters.in_flight.load(Ordering::Relaxed),
            max_in_flight: self.counters.max_in_flight.load(Ordering::Relaxed),
            shard_occupancy: self.store.occupancy(),
            latency,
            cost_model: active,
            cost_samples: log.len(),
            estimate_error: active.mean_relative_error(&log),
            recalibrations: self.counters.recalibrations.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{ViewDef, ViewSet};
    use gpv_graph::GraphBuilder;
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::PatternBuilder;

    fn single(x: &str, y: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let u = b.node_labeled(x);
        let v = b.node_labeled(y);
        b.edge(u, v);
        b.build().unwrap()
    }

    fn chain3() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(bb, c);
        b.build().unwrap()
    }

    fn graph() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.build()
    }

    fn service() -> (ViewService, DataGraph) {
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let store = Arc::new(ViewStore::materialize(views, &g, 4));
        (ViewService::new(store), g)
    }

    #[test]
    fn fingerprint_stable_for_equal_patterns() {
        assert_eq!(query_fingerprint(&chain3()), query_fingerprint(&chain3()));
        assert_ne!(
            query_fingerprint(&chain3()),
            query_fingerprint(&single("A", "B"))
        );
    }

    #[test]
    fn serve_matches_engine_and_caches_plans() {
        // Result caching off: the repeated serve must fall through to (and
        // therefore exercise) the plan cache. The result-cache layer above
        // it is covered by `repeated_serve_hits_result_cache`.
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let store = Arc::new(ViewStore::materialize(views, &g, 4));
        let svc = ViewService::with_config(
            store,
            ServiceConfig {
                result_cache_bytes: 0,
                ..ServiceConfig::default()
            },
        );
        let q = chain3();
        let direct = match_pattern(&q, &g);

        let first = svc.serve(&q, None).unwrap();
        assert_eq!(*first.result, direct);
        assert!(!first.plan_cached, "cold cache");

        let second = svc.serve(&q, None).unwrap();
        assert_eq!(*second.result, direct);
        assert!(second.plan_cached, "warm cache");
        assert!(
            Arc::ptr_eq(&first.plan, &second.plan),
            "identical fingerprints share one cached plan"
        );

        let stats = svc.stats();
        assert_eq!(stats.plan_cache_hits, 1);
        assert_eq!(stats.plan_cache_misses, 1);
        assert_eq!(stats.plan_cache_size, 1);
        assert!(stats.plan_cache_hit_rate > 0.0);
        assert_eq!(stats.result_cache_hits, 0, "result cache disabled");
        assert_eq!(stats.result_cache_size, 0);
        assert_eq!(stats.latency.count(), 2);
    }

    /// The cross-batch contract at unit scale: a repeated identical query
    /// is answered from the result cache — no planning, no execution —
    /// bit-identical to the uncached answer. Entries are held *frozen*
    /// (`Arc<CompactView>`, the byte-accounted columnar form) and thawed
    /// on hit, so the hit returns an equal answer, not the same `Arc`.
    #[test]
    fn repeated_serve_hits_result_cache() {
        let (svc, g) = service();
        let q = chain3();
        let first = svc.serve(&q, None).unwrap();
        assert!(!first.result_cached, "cold cache executes");
        assert_eq!(first.disposition(), CacheDisposition::Planned);

        let second = svc.serve(&q, None).unwrap();
        assert!(second.result_cached, "warm cache skips the executor");
        assert_eq!(second.disposition(), CacheDisposition::ResultCache);
        assert_eq!(
            *first.result, *second.result,
            "thawed hit is bit-identical to the executed answer"
        );
        assert_eq!(*second.result, match_pattern(&q, &g));

        let stats = svc.stats();
        assert_eq!(stats.result_cache_hits, 1);
        assert_eq!(stats.result_cache_misses, 1);
        assert_eq!(stats.result_cache_size, 1);
        assert!(stats.result_cache_bytes > 0);
        assert!(stats.result_cache_hit_rate > 0.0);
    }

    /// A view-set *membership* change must invalidate cached answers: the
    /// positional view indices a plan's epoch stamp is built over only
    /// mean anything within one membership, so registering a view changes
    /// the key (view-set fingerprint) and the same query re-executes —
    /// never serves the pre-mutation answer object. The dead entry's
    /// budget is released on rebuild. (Edge *deltas* are the surgical
    /// case: see `delta_to_one_view_keeps_answers_reading_other_views`.)
    #[test]
    fn result_cache_invalidated_by_store_mutation_and_recalibration_epoch() {
        let (svc, g) = service();
        let q = chain3();
        let first = svc.serve(&q, Some(&g)).unwrap();
        assert!(svc.serve(&q, Some(&g)).unwrap().result_cached);

        svc.store()
            .insert(ViewDef::new("vac", single("A", "C")), &g)
            .unwrap();
        let after = svc.serve(&q, Some(&g)).unwrap();
        assert!(!after.result_cached, "version bump must miss");
        assert!(
            !Arc::ptr_eq(&first.result, &after.result),
            "post-mutation answer is a fresh execution"
        );
        assert_eq!(*after.result, match_pattern(&q, &g));
        // Exact invalidation: the stale entry was purged on rebuild, so
        // only the new version's entry is resident.
        assert_eq!(svc.stats().result_cache_size, 1);

        // An epoch bump (recalibration) invalidates the same way.
        svc.calib_epoch.fetch_add(1, Ordering::Relaxed);
        let repriced = svc.serve(&q, Some(&g)).unwrap();
        assert!(!repriced.result_cached, "epoch bump must miss");
        assert_eq!(*repriced.result, match_pattern(&q, &g));
    }

    /// A strict (`g = None`) call must never be satisfied by an answer
    /// whose plan needed the graph: caching changes latency, not which
    /// queries a serving mode accepts.
    #[test]
    fn result_cache_never_leaks_graph_answers_into_strict_mode() {
        let g = graph();
        // Only one view: chain3 plans hybrid (needs G, not graph-optional).
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let store = Arc::new(ViewStore::materialize(views, &g, 2));
        let svc = ViewService::new(store);
        let q = chain3();
        let with_graph = svc.serve(&q, Some(&g)).unwrap();
        assert_eq!(*with_graph.result, match_pattern(&q, &g));
        // The answer is cached — but a strict call must still refuse.
        assert!(matches!(svc.serve(&q, None), Err(ServiceError::NeedsGraph)));
        // And with the graph again, it may serve from cache.
        assert!(svc.serve(&q, Some(&g)).unwrap().result_cached);
    }

    /// The byte budget holds: a stream of distinct answers evicts LRU
    /// entries instead of growing without bound.
    #[test]
    fn result_cache_respects_byte_budget() {
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let store = Arc::new(ViewStore::materialize(views, &g, 2));
        // A budget of ~2 small answers (frozen-column accounting).
        let small = CompactView::freeze(&match_pattern(&single("A", "B"), &g));
        let budget = 2 * result_entry_bytes(&small, &query_key(&single("A", "B"))) + 32;
        let svc = ViewService::with_config(
            store,
            ServiceConfig {
                result_cache_bytes: budget,
                ..ServiceConfig::default()
            },
        );
        for q in [
            single("A", "B"),
            single("B", "C"),
            chain3(),
            single("A", "B"),
        ] {
            let _ = svc.serve(&q, Some(&g));
        }
        let stats = svc.stats();
        assert!(
            stats.result_cache_bytes <= budget,
            "resident {} over budget {budget}",
            stats.result_cache_bytes
        );
        assert!(stats.result_cache_evictions > 0, "{stats:?}");
    }

    #[test]
    fn batch_dedup_fans_out_one_execution() {
        let (svc, g) = service();
        let q = chain3();
        let batch = vec![q.clone(), single("A", "B"), q.clone(), q.clone()];
        let answers = svc.serve_batch(&batch, None);
        assert_eq!(answers.len(), 4);
        for (i, a) in answers.iter().enumerate() {
            let a = a.as_ref().unwrap();
            assert_eq!(
                *a.result,
                match_pattern(&batch[i], &g),
                "answer {i} equals ground truth"
            );
        }
        assert!(!answers[0].as_ref().unwrap().deduplicated);
        assert!(answers[2].as_ref().unwrap().deduplicated);
        assert!(answers[3].as_ref().unwrap().deduplicated);
        assert_eq!(svc.stats().dedup_saved, 2);
    }

    #[test]
    fn needs_graph_without_fallback() {
        let g = graph();
        // Only one view: chain3 is not fully covered.
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let store = Arc::new(ViewStore::materialize(views, &g, 2));
        let svc = ViewService::new(store);
        let q = chain3();
        assert!(matches!(svc.serve(&q, None), Err(ServiceError::NeedsGraph)));
        // With the graph supplied the hybrid path answers correctly.
        let a = svc.serve(&q, Some(&g)).unwrap();
        assert_eq!(*a.result, match_pattern(&q, &g));
    }

    #[test]
    fn store_mutation_invalidates_plans_and_rebuilds_engine() {
        let (svc, g) = service();
        let q = chain3();
        svc.serve(&q, None).unwrap();
        assert_eq!(svc.stats().engine_rebuilds, 1);

        // Registering a view bumps the store version: new engine, new
        // view-set fingerprint, so the old cached plan is not reused.
        svc.store()
            .insert(ViewDef::new("vac", single("A", "C")), &g)
            .unwrap();
        let after = svc.serve(&q, None).unwrap();
        assert!(!after.plan_cached, "view-set fingerprint changed");
        assert_eq!(*after.result, match_pattern(&q, &g));
        assert_eq!(svc.stats().engine_rebuilds, 2);
    }

    #[test]
    fn explain_mentions_cache_key() {
        let (svc, _) = service();
        let text = svc.explain(&chain3());
        assert!(text.contains("cache"), "{text}");
        assert!(text.contains("views"), "{text}");
    }

    #[test]
    fn latency_histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.quantile_upper_micros(0.99), None);
        assert_eq!(h.quantile_label(0.99), "n/a");
        h.buckets[3] = 90; // < 8 µs
        h.buckets[10] = 10; // < 1024 µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), Some(QuantileBound::Under(8)));
        assert_eq!(h.quantile_upper_micros(0.5), Some(8));
        assert_eq!(h.quantile_upper_micros(0.99), Some(1024));
        assert_eq!(h.quantile_label(0.99), "< 1024 µs");
    }

    /// Regression: a quantile landing in the unbounded overflow bucket used
    /// to be indistinguishable from "no data" — and one bucket earlier it
    /// silently reported a finite bound it did not have. The marker must be
    /// the explicit `Overflow` variant, `quantile_upper_micros` must refuse
    /// a finite answer, and the label must say ≥, not <.
    #[test]
    fn quantile_overflow_is_an_explicit_marker_not_a_finite_bound() {
        let floor = 1u64 << (LATENCY_BUCKETS - 2);
        let mut slow = LatencyHistogram::default();
        slow.buckets[LATENCY_BUCKETS - 1] = 10;
        assert_eq!(slow.quantile(0.99), Some(QuantileBound::Overflow(floor)));
        assert_eq!(slow.quantile_upper_micros(0.99), None, "no finite bound");
        assert_eq!(slow.quantile_label(0.99), format!(">= {floor} µs"));
        // Mixed histogram: p50 is bounded, p99 overflows — the two answers
        // must differ in kind, not just in value.
        let mut mixed = LatencyHistogram::default();
        mixed.buckets[2] = 90;
        mixed.buckets[LATENCY_BUCKETS - 1] = 10;
        assert_eq!(mixed.quantile(0.5), Some(QuantileBound::Under(4)));
        assert_eq!(mixed.quantile(0.99), Some(QuantileBound::Overflow(floor)));
        assert_eq!(mixed.quantile_upper_micros(0.99), None);
    }

    /// Regression: `p = 0.0` used to clamp to `target = 0`, making
    /// `seen >= target` vacuously true at bucket 0 — the histogram claimed
    /// a `< 1 µs` "quantile" even when bucket 0 held zero observations.
    /// Non-positive (and NaN) `p` must be rejected, never answered.
    #[test]
    fn quantile_rejects_non_positive_p() {
        let mut h = LatencyHistogram::default();
        h.buckets[10] = 100; // nothing anywhere near bucket 0
        assert_eq!(h.quantile_upper_micros(0.0), None);
        assert_eq!(h.quantile_upper_micros(-0.5), None);
        assert_eq!(h.quantile_upper_micros(f64::NAN), None);
        assert_eq!(h.quantile_label(0.0), "n/a");
        assert_eq!(h.quantile_label(-1.0), "n/a");
        // Sanity: positive quantiles still answered, p > 1 clamps to 1.
        assert_eq!(h.quantile_upper_micros(0.5), Some(1024));
        assert_eq!(h.quantile_upper_micros(2.0), Some(1024));
    }

    #[test]
    fn mismatched_graph_rejected_when_plan_reads_it() {
        let (svc, g) = service();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["A"]);
        let y = b.add_node(["B"]);
        b.add_edge(x, y);
        let other = b.build();
        // Uncovered query: the plan must read G, so the wrong graph is
        // detected instead of computing garbage.
        let uncovered = single("A", "C");
        assert!(matches!(
            svc.serve(&uncovered, Some(&other)),
            Err(ServiceError::GraphMismatch { .. })
        ));
        // Covered query: views-only plans never touch the supplied graph,
        // so the answer is correct (for the store's graph) regardless.
        let covered = svc.serve(&chain3(), Some(&other)).unwrap();
        assert_eq!(*covered.result, match_pattern(&chain3(), &g));
    }

    /// Regression: a *warm* result cache must not mask the graph check.
    /// The uncovered query's answer is cached after a correct-graph serve;
    /// re-serving it with the wrong graph must still fail with
    /// GraphMismatch, exactly like the cold path — the cache probe used to
    /// run before (and bypass) the fingerprint validation.
    #[test]
    fn warm_result_cache_still_rejects_mismatched_graph() {
        let (svc, g) = service();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["A"]);
        let y = b.add_node(["B"]);
        b.add_edge(x, y);
        let other = b.build();
        let uncovered = single("A", "C");
        // Warm the cache with the right graph…
        let warm = svc.serve(&uncovered, Some(&g)).unwrap();
        assert_eq!(*warm.result, match_pattern(&uncovered, &g));
        // …then the wrong graph must still be rejected, not served.
        assert!(matches!(
            svc.serve(&uncovered, Some(&other)),
            Err(ServiceError::GraphMismatch { .. })
        ));
        // And the right graph keeps hitting.
        assert!(svc.serve(&uncovered, Some(&g)).unwrap().result_cached);
    }

    /// Regression (the PR 4 caveat): with `recalibrate_every` set and a hot
    /// result cache, a fully cached steady state executes nothing, records
    /// no samples — and must therefore never attempt a re-fit, bump the
    /// epoch, or rebuild the engine. The cadence counts *executed* queries
    /// only; cache hits and dedup fan-outs show up in `cost_log_starved`
    /// instead.
    #[test]
    fn hot_result_cache_never_triggers_pointless_recalibration_or_rebuild() {
        let g = graph();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vbc", single("B", "C")),
        ]);
        let store = Arc::new(ViewStore::materialize(views, &g, 2));
        let svc = ViewService::with_config(
            store,
            ServiceConfig {
                recalibrate_every: 1,
                ..ServiceConfig::default()
            },
        );
        let q = chain3();
        // Warm up: the first serve executes (1 executed query; with
        // recalibrate_every = 1 the service may attempt a fit — over a
        // 1-sample log `calibrate` refuses, so nothing installs).
        assert!(!svc.serve(&q, None).unwrap().result_cached);
        let warm = svc.stats();
        assert_eq!(warm.executed_queries, 1);

        // Steady state: every serve hits the result cache (plus in-batch
        // dedup), executes nothing, and the calibration machinery must not
        // move — no recalibrations, no epoch bump, no engine rebuild.
        for _ in 0..10 {
            let batch = vec![q.clone(), q.clone()];
            for a in svc.serve_batch(&batch, None) {
                let a = a.unwrap();
                assert!(a.result_cached || a.deduplicated, "steady state is hot");
            }
        }
        let hot = svc.stats();
        assert_eq!(hot.executed_queries, 1, "nothing executed while hot");
        assert_eq!(hot.cost_log_starved, 20, "every hot serve starved the log");
        assert_eq!(
            hot.engine_rebuilds, warm.engine_rebuilds,
            "a hot cache must never rebuild the engine"
        );
        assert_eq!(hot.recalibrations, warm.recalibrations);
        assert_eq!(hot.cost_samples, warm.cost_samples, "no new measurements");

        // And the cadence still works once real executions resume: a fresh
        // query (cache miss) executes and re-arms the loop.
        let q2 = single("A", "B");
        svc.serve(&q2, None).unwrap();
        assert_eq!(svc.stats().executed_queries, 2);
    }

    /// The tentpole contract at the serving layer: an [`EdgeDelta`] that
    /// the footprint detector routes to view *vcd* must leave cached
    /// answers that read only *vab* warm — the engine rebuilds (the store
    /// version moved), the extension `Arc` and epoch of the untouched view
    /// are preserved, and the epoch-keyed result cache keeps hitting.
    /// Answers that read the changed view (or the graph) miss and
    /// recompute against the post-delta world.
    #[test]
    fn delta_to_one_view_keeps_answers_reading_other_views() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let bb = b.add_node(["B"]);
        let c = b.add_node(["C"]);
        let d = b.add_node(["D"]);
        b.add_edge(a, bb);
        b.add_edge(c, d);
        let g = b.build();
        let views = ViewSet::new(vec![
            ViewDef::new("vab", single("A", "B")),
            ViewDef::new("vcd", single("C", "D")),
        ]);
        let store = Arc::new(ViewStore::materialize(views, &g, 2));
        let svc = ViewService::new(store);
        let qab = single("A", "B");
        let qcd = single("C", "D");
        svc.serve(&qab, None).unwrap();
        svc.serve(&qcd, None).unwrap();
        assert!(svc.serve(&qab, None).unwrap().result_cached);
        assert!(svc.serve(&qcd, None).unwrap().result_cached);
        let before = svc.store().snapshot();
        let rebuilds = svc.stats().engine_rebuilds;

        // Delete C→D: both endpoints hold labels only vcd's footprint has.
        let delta = EdgeDelta::new(vec![], vec![(c, d)]);
        let report = svc.apply_delta(&delta, &g).unwrap();
        assert_eq!(report.affected, vec![1], "only vcd routed to maintenance");
        let g2 = report.graph;

        // vab's answer survives the delta: the engine did rebuild, but the
        // untouched view kept its extension Arc and epoch, so the
        // epoch-keyed entry still hits.
        let kept = svc.serve(&qab, None).unwrap();
        assert!(
            kept.result_cached,
            "a delta to vcd must not evict vab-only answers"
        );
        assert!(svc.stats().engine_rebuilds > rebuilds, "version did move");
        let after = svc.store().snapshot();
        assert!(
            Arc::ptr_eq(&before.views()[0].ext, &after.views()[0].ext),
            "untouched extension is the same object"
        );
        assert_eq!(before.epochs()[0], after.epochs()[0]);
        assert!(after.epochs()[1] > before.epochs()[1]);

        // vcd's answer misses and recomputes against the post-delta graph.
        let fresh = svc.serve(&qcd, None).unwrap();
        assert!(!fresh.result_cached, "the changed view's answers miss");
        assert!(fresh.plan_cached, "membership unchanged: the plan survives");
        assert_eq!(*fresh.result, match_pattern(&qcd, &g2));
        // …and the recomputed answer re-enters the cache at the new stamp.
        assert!(svc.serve(&qcd, None).unwrap().result_cached);
    }

    /// The negative cache: a strict-mode `NeedsGraph` refusal is
    /// remembered, so repeating the refused query skips the plan cache and
    /// the planner entirely — and a membership change that makes the query
    /// answerable re-arms it.
    #[test]
    fn repeated_needs_graph_refusals_skip_planning() {
        let g = graph();
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let store = Arc::new(ViewStore::materialize(views, &g, 2));
        let svc = ViewService::new(store);
        let q = chain3();
        assert!(matches!(svc.serve(&q, None), Err(ServiceError::NeedsGraph)));
        let cold = svc.stats();
        assert_eq!(cold.plan_cache_misses, 1, "the first refusal plans");
        assert_eq!(cold.refusal_cache_size, 1);
        assert_eq!(cold.refusal_hits, 0);

        assert!(matches!(svc.serve(&q, None), Err(ServiceError::NeedsGraph)));
        let warm = svc.stats();
        assert_eq!(warm.refusal_hits, 1);
        assert_eq!(warm.plan_cache_misses, 1, "the repeat never plans");
        assert_eq!(warm.plan_cache_hits, 0, "…and never probes the plan cache");

        // Refusals guard strict mode only: with the graph supplied the
        // hybrid path still executes and answers.
        let a = svc.serve(&q, Some(&g)).unwrap();
        assert_eq!(*a.result, match_pattern(&q, &g));

        // A membership change invalidates the refusal: with vbc registered
        // the query is covered and strict mode now answers.
        svc.store()
            .insert(ViewDef::new("vbc", single("B", "C")), &g)
            .unwrap();
        let now = svc.serve(&q, None).unwrap();
        assert_eq!(*now.result, match_pattern(&q, &g));
        assert_eq!(svc.stats().refusal_cache_size, 0, "stale refusals cleared");
    }

    #[test]
    fn plan_cache_capacity_zero_disables_caching() {
        let g = graph();
        let views = ViewSet::new(vec![ViewDef::new("vab", single("A", "B"))]);
        let store = Arc::new(ViewStore::materialize(views, &g, 1));
        let svc = ViewService::with_config(
            store,
            ServiceConfig {
                plan_cache_capacity: 0,
                ..ServiceConfig::default()
            },
        );
        let q = single("A", "B");
        svc.serve(&q, None).unwrap();
        svc.serve(&q, None).unwrap();
        let stats = svc.stats();
        assert_eq!(stats.plan_cache_hits, 0);
        assert_eq!(stats.plan_cache_size, 0);
    }
}
