//! Cost model for the query planner ([`crate::engine::QueryEngine`]).
//!
//! Theorem 1 prices `MatchJoin` at `O(|Qs||V(G)| + |V(G)|²)` and direct
//! evaluation at `O(|Qs|² + |Qs||G| + |G|²)` — both dominated by how many
//! match pairs the executor reads and refines. The planner therefore costs
//! every candidate plan by its *pairs read*: the sum over query edges of
//! the smallest covering extension (mirroring the witness-narrowing merge in
//! `matchjoin::merge_step`), or `|G|`-proportional terms for plans
//! that must scan the graph. Weights are unit-free relative factors, not
//! nanoseconds; only comparisons between candidate plans matter.

use crate::bview::BoundedViewExtensions;
use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::view::ViewExtensions;
use gpv_graph::stats::GraphStats;
use gpv_pattern::Pattern;
use serde::{Deserialize, Serialize};

/// Relative cost weights. The defaults make view-only plans strongly
/// preferred over graph scans (the whole point of the paper) and charge a
/// realistic premium for planning-time view selection.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of reading one materialized pair during the merge step.
    pub read_pair: f64,
    /// Cost of refining one merged pair in the fixpoint.
    pub refine_pair: f64,
    /// Cost of scanning one graph edge (hybrid/direct plans).
    pub scan_edge: f64,
    /// Planning cost of one view-match simulation, per view per query edge.
    pub containment_unit: f64,
    /// Fixed overhead of spawning one worker thread.
    pub thread_spawn: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_pair: 1.0,
            refine_pair: 1.0,
            scan_edge: 4.0,
            containment_unit: 0.25,
            thread_spawn: 2_000.0,
        }
    }
}

/// A costed estimate for one candidate plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Materialized pairs the merge step would read.
    pub pairs_read: u64,
    /// Graph edges a hybrid/direct plan would scan (0 for view-only plans).
    pub graph_edges_scanned: u64,
    /// Planning-time work already spent producing this candidate (e.g. the
    /// `minimal`/`minimum` view-match sweeps). Informational: by the time
    /// candidates are compared this is a sunk cost, so it is *not* part of
    /// [`total`](CostEstimate::total).
    pub planning: f64,
    /// Total relative *execution* cost (lower wins).
    pub total: f64,
}

/// Per-edge minimum over a λ: the smallest covering extension, which is
/// exactly what the witness-narrowing merge reads (uncovered entries count
/// zero). One definition shared by the plain, partial, and bounded planners.
fn min_cover_pairs(lambda: &[Vec<ViewEdgeRef>], size_of: impl Fn(&ViewEdgeRef) -> u64) -> u64 {
    lambda
        .iter()
        .map(|entries| entries.iter().map(&size_of).min().unwrap_or(0))
        .sum()
}

impl CostModel {
    /// Pairs the witness-narrowing merge reads under a λ (a full
    /// [`ContainmentPlan::lambda`] or a partial one with empty entries).
    pub fn pairs_read(&self, lambda: &[Vec<ViewEdgeRef>], ext: &ViewExtensions) -> u64 {
        min_cover_pairs(lambda, |r| ext.edge_set(r.view, r.edge).len() as u64)
    }

    /// Bounded analogue of [`Self::pairs_read`] over `I(V)`-carrying
    /// extensions.
    pub fn pairs_read_bounded(
        &self,
        lambda: &[Vec<ViewEdgeRef>],
        ext: &BoundedViewExtensions,
    ) -> u64 {
        min_cover_pairs(lambda, |r| ext.edge_set(r.view, r.edge).len() as u64)
    }

    /// Execution cost of a (B)MatchJoin reading `pairs` pairs for a query
    /// with `edge_count` edges: merge reads each pair once; the fixpoint
    /// refines the merged working set, with the `|Qs|` factor from per-edge
    /// propagation.
    pub fn join_exec_cost(&self, edge_count: usize, pairs: u64) -> f64 {
        self.read_pair * pairs as f64 + self.refine_pair * pairs as f64 * (edge_count as f64).sqrt()
    }

    /// Cost of executing a view-only `MatchJoin` under `plan`.
    pub fn view_plan(
        &self,
        q: &Pattern,
        plan: &ContainmentPlan,
        ext: &ViewExtensions,
    ) -> CostEstimate {
        let pairs = self.pairs_read(&plan.lambda, ext);
        CostEstimate {
            pairs_read: pairs,
            graph_edges_scanned: 0,
            planning: 0.0,
            total: self.join_exec_cost(q.edge_count(), pairs),
        }
    }

    /// Cost of a hybrid plan: covered edges read views, uncovered edges scan
    /// `G` (surgical per-edge scans, ~`|E(G)|` each in the worst case).
    pub fn hybrid_plan(
        &self,
        q: &Pattern,
        covered_pairs: u64,
        uncovered_edges: usize,
        g: &GraphStats,
    ) -> CostEstimate {
        let scanned = uncovered_edges as u64 * g.edges as u64;
        let working = covered_pairs + scanned;
        let total = self.read_pair * covered_pairs as f64
            + self.scan_edge * scanned as f64
            + self.refine_pair * working as f64 * (q.edge_count() as f64).sqrt();
        CostEstimate {
            pairs_read: covered_pairs,
            graph_edges_scanned: scanned,
            planning: 0.0,
            total,
        }
    }

    /// Cost of evaluating `Qs` directly on `G` (the `Match` baseline).
    pub fn direct(&self, q: &Pattern, g: &GraphStats) -> CostEstimate {
        let scanned = q.edge_count() as u64 * g.edges as u64;
        CostEstimate {
            pairs_read: 0,
            graph_edges_scanned: scanned,
            planning: 0.0,
            total: self.scan_edge * scanned as f64,
        }
    }

    /// Planning cost of running view selection (`minimal` / `minimum`):
    /// one view-match simulation per view, each ~`|Qs|²` work. Recorded in
    /// [`CostEstimate::planning`] for EXPLAIN output; it is a sunk cost by
    /// comparison time, so candidates still compete on execution cost.
    pub fn selection_overhead(&self, q: &Pattern, view_count: usize) -> f64 {
        let qsq = (q.edge_count() * q.edge_count()) as f64;
        self.containment_unit * view_count as f64 * qsq
    }

    /// Whether the parallel executor is worth its spawn overhead for a plan
    /// reading `pairs` pairs on `threads` workers.
    ///
    /// ```
    /// let cm = gpv_core::cost::CostModel::default();
    /// assert!(!cm.parallel_pays(100, 4)); // tiny job: spawn cost dominates
    /// assert!(cm.parallel_pays(1_000_000, 4)); // big merge: fan out
    /// ```
    pub fn parallel_pays(&self, pairs: u64, threads: usize) -> bool {
        if threads < 2 {
            return false;
        }
        let serial = self.read_pair * pairs as f64;
        let spawn = self.thread_spawn * threads as f64;
        // Parallelizing saves up to (1 - 1/t) of the per-pair build work.
        serial * (1.0 - 1.0 / threads as f64) > spawn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::view::{materialize, ViewDef, ViewSet};
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    fn chain(labels: &[&str]) -> Pattern {
        let mut b = PatternBuilder::new();
        let ids: Vec<_> = labels.iter().map(|l| b.node_labeled(l)).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn pairs_read_matches_merge_choice() {
        // Two views cover the same edge with different extension sizes; the
        // cost model must count only the smaller one (as merge_step reads).
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node(["A"]);
        let b1 = gb.add_node(["B"]);
        let a2 = gb.add_node(["A"]);
        let b2 = gb.add_node(["B"]);
        gb.add_edge(a1, b1);
        gb.add_edge(a2, b2);
        gb.add_edge(a1, b2);
        let g = gb.build();

        let q = chain(&["A", "B"]);
        let views = ViewSet::new(vec![
            ViewDef::new("vab", chain(&["A", "B"])),
            ViewDef::new("vab2", chain(&["A", "B"])),
        ]);
        let plan = contain(&q, &views).unwrap();
        let ext = materialize(&views, &g);
        let cm = CostModel::default();
        let pairs = cm.pairs_read(&plan.lambda, &ext);
        // Both views have the same extension here; the min is one of them.
        assert_eq!(
            pairs,
            ext.edge_set(0, gpv_pattern::PatternEdgeId(0)).len() as u64
        );
    }

    #[test]
    fn view_plans_beat_direct_on_small_extensions() {
        let cm = CostModel::default();
        let q = chain(&["A", "B", "C"]);
        let stats = GraphStats {
            nodes: 100_000,
            edges: 400_000,
            avg_out_degree: 4.0,
            max_out_degree: 50,
            max_in_degree: 50,
            labels: 10,
            alpha: 1.1,
        };
        let direct = cm.direct(&q, &stats);
        // A view plan reading 10k pairs must be far cheaper.
        assert!(direct.total > cm.read_pair * 10_000.0 * 10.0);
    }

    #[test]
    fn parallel_gate() {
        let cm = CostModel::default();
        assert!(!cm.parallel_pays(100, 1), "never parallel on one thread");
        assert!(!cm.parallel_pays(100, 4), "tiny jobs stay sequential");
        assert!(cm.parallel_pays(1_000_000, 4), "large jobs parallelize");
    }
}
