//! Cost model for the query planner ([`crate::engine::QueryEngine`]) and
//! the measured-cost calibration loop.
//!
//! Theorem 1 prices `MatchJoin` at `O(|Qs||V(G)| + |V(G)|²)` and direct
//! evaluation at `O(|Qs|² + |Qs||G| + |G|²)` — both dominated by how many
//! match pairs the executor reads and refines. The planner therefore costs
//! every candidate plan by its *pairs read*: the sum over query edges of
//! the smallest covering extension (mirroring the witness-narrowing merge in
//! `matchjoin::merge_step`), or `|G|`-proportional terms for plans
//! that must scan the graph.
//!
//! The default weights are unit-free relative factors; only comparisons
//! between candidate plans matter. The **calibration loop** turns them into
//! measured microseconds: the engine records a [`CostSample`] — estimate,
//! executor [`JoinStats`], wall time — for every executed plan into a
//! bounded [`CostLog`], and [`CostModel::calibrate`] least-squares-fits
//! `read_pair` / `refine_pair` / `scan_edge` against those measurements, so
//! subsequent plans are priced in the units the hardware actually exhibits.

use crate::bview::BoundedViewExtensions;
use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::matchjoin::JoinStats;
use crate::view::ViewExtensions;
use gpv_graph::stats::GraphStats;
use gpv_pattern::Pattern;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Relative cost weights. The defaults make view-only plans strongly
/// preferred over graph scans (the whole point of the paper) and charge a
/// realistic premium for planning-time view selection. After
/// [`calibrate`](CostModel::calibrate) the pair/edge weights are measured
/// microseconds per unit instead of unit-free factors.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of reading one materialized pair during the merge step.
    pub read_pair: f64,
    /// Cost of refining one merged pair in the fixpoint.
    pub refine_pair: f64,
    /// Cost of scanning one graph edge (hybrid/direct plans).
    pub scan_edge: f64,
    /// Planning cost of one view-match simulation, per view per query edge.
    pub containment_unit: f64,
    /// Fixed overhead of spawning one worker thread.
    pub thread_spawn: f64,
    /// Whether the pair/edge weights came from [`CostModel::calibrate`]
    /// (measured µs) rather than the unit-free defaults.
    pub calibrated: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            read_pair: 1.0,
            refine_pair: 1.0,
            scan_edge: 4.0,
            containment_unit: 0.25,
            thread_spawn: 2_000.0,
            calibrated: false,
        }
    }
}

/// A costed estimate for one candidate plan.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Materialized pairs the merge step would read.
    pub pairs_read: u64,
    /// Graph edges a hybrid/direct plan would scan (0 for view-only plans).
    pub graph_edges_scanned: u64,
    /// Planning-time work already spent producing this candidate (e.g. the
    /// `minimal`/`minimum` view-match sweeps). Informational: by the time
    /// candidates are compared this is a sunk cost, so it is *not* part of
    /// [`total`](CostEstimate::total).
    pub planning: f64,
    /// Total relative *execution* cost (lower wins).
    pub total: f64,
    /// The weights this estimate was priced under (so an EXPLAIN'd plan is
    /// self-describing even after the engine recalibrates).
    pub weights: CostModel,
}

impl Default for CostEstimate {
    fn default() -> Self {
        CostEstimate {
            pairs_read: 0,
            graph_edges_scanned: 0,
            planning: 0.0,
            total: 0.0,
            weights: CostModel::default(),
        }
    }
}

/// One executed plan's estimate-vs-actual record: what the planner
/// predicted, what the executor measured, and the wall time. The feature
/// vector for [`CostModel::calibrate`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostSample {
    /// The planner's estimate for the executed plan.
    pub estimate: CostEstimate,
    /// Executor instrumentation from the actual run.
    pub stats: JoinStats,
    /// Query edge count (the `|Qs|` factor of the refine term).
    pub edge_count: usize,
    /// Measured end-to-end execution wall time, in microseconds.
    pub wall_micros: f64,
}

impl CostSample {
    /// The calibration feature vector `[pairs read, refine units, edges
    /// scanned]`: `wall ≈ read_pair·f₀ + refine_pair·f₁ + scan_edge·f₂`.
    /// The refine unit uses the *measured* working-set size
    /// ([`JoinStats::merged_pairs`]) rather than the estimate, so the fit
    /// regresses against what the executor actually touched.
    pub fn features(&self) -> [f64; 3] {
        let ne = (self.edge_count.max(1) as f64).sqrt();
        [
            self.estimate.pairs_read as f64,
            self.stats.merged_pairs as f64 * ne,
            self.estimate.graph_edges_scanned as f64,
        ]
    }
}

/// A bounded ring buffer of [`CostSample`]s (oldest evicted first).
#[derive(Clone, Debug)]
pub struct CostLog {
    samples: VecDeque<CostSample>,
    capacity: usize,
}

impl Default for CostLog {
    fn default() -> Self {
        CostLog::new(1024)
    }
}

impl CostLog {
    /// An empty log keeping at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        CostLog {
            samples: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&mut self, sample: CostSample) {
        if self.samples.len() >= self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Recorded samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CostSample> {
        self.samples.iter()
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A thread-shared [`CostLog`] handle: the engine records into it from
/// `&self` execution paths, and the serving layer keeps one handle alive
/// across engine rebuilds so calibration sees the full history.
#[derive(Clone, Debug, Default)]
pub struct SharedCostLog(Arc<Mutex<CostLog>>);

impl SharedCostLog {
    /// A fresh shared log with the given retention bound.
    pub fn new(capacity: usize) -> Self {
        SharedCostLog(Arc::new(Mutex::new(CostLog::new(capacity))))
    }

    /// Records one sample. Non-blocking: the log sits on every executor's
    /// hot path, so under contention the sample is simply dropped —
    /// calibration is statistical and loses nothing to sampling, while the
    /// serving layer never serializes on this mutex.
    pub fn record(&self, sample: CostSample) {
        if let Ok(mut log) = self.0.try_lock() {
            log.push(sample);
        }
    }

    /// A point-in-time copy of the log.
    pub fn snapshot(&self) -> CostLog {
        self.0.lock().expect("cost log lock poisoned").clone()
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.0.lock().expect("cost log lock poisoned").len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-edge minimum over a λ: the smallest covering extension, which is
/// exactly what the witness-narrowing merge reads. `None` when some entry
/// is empty (an uncovered edge) — a λ with holes prices *nothing*, it needs
/// hybrid pricing. One definition shared by the plain, partial, and bounded
/// planners.
fn min_cover_pairs(
    lambda: &[Vec<ViewEdgeRef>],
    size_of: impl Fn(&ViewEdgeRef) -> u64,
) -> Option<u64> {
    lambda
        .iter()
        .map(|entries| entries.iter().map(&size_of).min())
        .sum()
}

/// Like [`min_cover_pairs`] but counting empty (uncovered) entries as zero
/// — the *covered-pairs* aggregation for partial λs, shared by the plain
/// and bounded pricers (hybrid pricing charges the uncovered edges
/// separately as graph scans).
fn covered_pairs(lambda: &[Vec<ViewEdgeRef>], size_of: impl Fn(&ViewEdgeRef) -> u64) -> u64 {
    lambda
        .iter()
        .map(|entries| entries.iter().map(&size_of).min().unwrap_or(0))
        .sum()
}

impl CostModel {
    /// Pairs the witness-narrowing merge reads for the *covered* edges of a
    /// λ (a full [`ContainmentPlan::lambda`] or a partial one): empty
    /// entries contribute zero here because hybrid pricing charges them as
    /// graph scans separately. Do **not** feed the result to view-only
    /// pricing — [`Self::view_plan`] rejects partial λs for that reason.
    pub fn pairs_read(&self, lambda: &[Vec<ViewEdgeRef>], ext: &ViewExtensions) -> u64 {
        covered_pairs(lambda, |r| ext.edge_set(r.view, r.edge).len() as u64)
    }

    /// Bounded analogue of [`Self::pairs_read`] over `I(V)`-carrying
    /// extensions.
    pub fn pairs_read_bounded(
        &self,
        lambda: &[Vec<ViewEdgeRef>],
        ext: &BoundedViewExtensions,
    ) -> u64 {
        covered_pairs(lambda, |r| ext.edge_set(r.view, r.edge).len() as u64)
    }

    /// Execution cost of a (B)MatchJoin reading `pairs` pairs for a query
    /// with `edge_count` edges: merge reads each pair once; the fixpoint
    /// refines the merged working set, with the `|Qs|` factor from per-edge
    /// propagation.
    pub fn join_exec_cost(&self, edge_count: usize, pairs: u64) -> f64 {
        self.read_pair * pairs as f64 + self.refine_pair * pairs as f64 * (edge_count as f64).sqrt()
    }

    /// Cost of executing a view-only `MatchJoin` under `plan`. A λ with an
    /// uncovered (empty) entry cannot be executed from views alone, so it is
    /// priced infinite — it must never beat a correctly-priced hybrid or
    /// direct plan (regression: `unwrap_or(0)` used to price uncovered
    /// edges as *free* here).
    pub fn view_plan(
        &self,
        q: &Pattern,
        plan: &ContainmentPlan,
        ext: &ViewExtensions,
    ) -> CostEstimate {
        match min_cover_pairs(&plan.lambda, |r| ext.edge_set(r.view, r.edge).len() as u64) {
            Some(pairs) => CostEstimate {
                pairs_read: pairs,
                graph_edges_scanned: 0,
                planning: 0.0,
                total: self.join_exec_cost(q.edge_count(), pairs),
                weights: *self,
            },
            None => CostEstimate {
                pairs_read: 0,
                graph_edges_scanned: 0,
                planning: 0.0,
                total: f64::INFINITY,
                weights: *self,
            },
        }
    }

    /// Cost of a hybrid plan: `covered_pairs` read from views, `uncovered_edges`
    /// query edges scanned surgically from `G` (~`|E(G)|` each in the worst
    /// case).
    pub fn hybrid_plan(
        &self,
        q: &Pattern,
        covered_pairs: u64,
        uncovered_edges: usize,
        g: &GraphStats,
    ) -> CostEstimate {
        let scanned = uncovered_edges as u64 * g.edges as u64;
        let working = covered_pairs + scanned;
        let total = self.read_pair * covered_pairs as f64
            + self.scan_edge * scanned as f64
            + self.refine_pair * working as f64 * (q.edge_count() as f64).sqrt();
        CostEstimate {
            pairs_read: covered_pairs,
            graph_edges_scanned: scanned,
            planning: 0.0,
            total,
            weights: *self,
        }
    }

    /// Cost of evaluating `Qs` directly on `G` (the `Match` baseline).
    pub fn direct(&self, q: &Pattern, g: &GraphStats) -> CostEstimate {
        let scanned = q.edge_count() as u64 * g.edges as u64;
        CostEstimate {
            pairs_read: 0,
            graph_edges_scanned: scanned,
            planning: 0.0,
            total: self.scan_edge * scanned as f64,
            weights: *self,
        }
    }

    /// Per-edge sourcing decision (the cost-based hybrid selection): should
    /// one covered query edge read its smallest covering extension
    /// (`ext_pairs` pairs) or scan `G` surgically (~`|E(G)|` edges)? Both
    /// sides include the refine term their merged set implies, so the
    /// comparison is apples-to-apples. Ties keep the view (the paper's
    /// default). With the unit-free default weights a view always wins
    /// (extensions are subsets of `E(G)` and `scan_edge > read_pair`);
    /// calibrated weights can flip the decision when scanning is measured
    /// cheaper per unit than reading bloated extensions.
    pub fn edge_prefers_graph(&self, edge_count: usize, ext_pairs: u64, g: &GraphStats) -> bool {
        let refine = self.refine_pair * (edge_count.max(1) as f64).sqrt();
        let view_cost = (self.read_pair + refine) * ext_pairs as f64;
        let graph_cost = (self.scan_edge + refine) * g.edges as f64;
        graph_cost < view_cost
    }

    /// Planning cost of running view selection (`minimal` / `minimum`):
    /// one view-match simulation per view, each ~`|Qs|²` work. Recorded in
    /// [`CostEstimate::planning`] for EXPLAIN output; it is a sunk cost by
    /// comparison time, so candidates still compete on execution cost.
    pub fn selection_overhead(&self, q: &Pattern, view_count: usize) -> f64 {
        let qsq = (q.edge_count() * q.edge_count()) as f64;
        self.containment_unit * view_count as f64 * qsq
    }

    /// Whether the parallel executor is worth its overhead for a plan
    /// reading `pairs` pairs on `threads` workers. The overhead side prices
    /// both the spawn cost *and* the merge/stitch barrier the staged
    /// pipeline pays (per-worker results are combined sequentially in fixed
    /// index order between stages — see [`crate::parallel`]), so a job has
    /// to amortize the whole coordination bill, not just thread creation.
    ///
    /// ```
    /// let cm = gpv_core::cost::CostModel::default();
    /// assert!(!cm.parallel_pays(100, 4)); // tiny job: spawn cost dominates
    /// assert!(cm.parallel_pays(1_000_000, 4)); // big merge: fan out
    /// ```
    pub fn parallel_pays(&self, pairs: u64, threads: usize) -> bool {
        if threads < 2 {
            return false;
        }
        let serial = self.read_pair * pairs as f64;
        // Spawn plus the per-stage stitch: each worker's results are merged
        // back sequentially, costing roughly half a spawn's worth of
        // coordination per worker per stage (measured, not load-bearing —
        // the gate only has to keep tiny jobs inline).
        let overhead = (self.thread_spawn + Self::STITCH_UNIT * self.thread_spawn) * threads as f64;
        // Parallelizing saves up to (1 - 1/t) of the per-pair build work.
        serial * (1.0 - 1.0 / threads as f64) > overhead
    }

    /// Relative weight of the sequential stitch barrier per worker, as a
    /// fraction of [`CostModel::thread_spawn`]. The chunked pipeline runs
    /// *two* parallel passes (counts, then scatter) around a sequential
    /// prefix stitch, so it pays this twice per chunk.
    const STITCH_UNIT: f64 = 0.5;

    /// Floor on the chunk size for intra-edge parallelism: below this, the
    /// per-chunk fixed costs (allocation, stitch bookkeeping) drown the
    /// fanned-out work.
    pub const MIN_CHUNK_PAIRS: usize = 4096;

    /// Granularity decision for a parallel plan, driven by the *per-edge*
    /// pair counts rather than their total: per-edge fan-out has a speedup
    /// ceiling of `|Eq|` work units, so when there are more workers than
    /// edges and one edge's set is large enough to amortize the chunked
    /// pipeline's extra pass and stitch, the largest sets are split into
    /// fixed chunks of the returned size. Returns
    /// [`ParGranularity::PerEdge`](crate::plan::ParGranularity::PerEdge)
    /// whenever chunking cannot pay (enough edges to saturate the workers,
    /// or sets too small to split).
    pub fn parallel_granularity(
        &self,
        per_edge_pairs: &[u64],
        threads: usize,
    ) -> crate::plan::ParGranularity {
        use crate::plan::ParGranularity;
        let ne = per_edge_pairs.len();
        let max_pairs = per_edge_pairs.iter().copied().max().unwrap_or(0);
        if threads < 2 || ne == 0 || ne >= threads {
            // Enough per-edge units to keep every worker busy (or no
            // parallelism at all): the chunked pipeline's second pass and
            // stitch would be pure overhead.
            return ParGranularity::PerEdge;
        }
        // Split the largest set into ~`threads` chunks, floored so chunks
        // stay coarse enough to amortize their fixed costs.
        let chunk_pairs = (max_pairs as usize)
            .div_ceil(threads)
            .max(Self::MIN_CHUNK_PAIRS);
        let chunks = (max_pairs as usize).div_ceil(chunk_pairs.max(1));
        if chunks < 2 {
            return ParGranularity::PerEdge; // largest set fits one chunk
        }
        // Chunking the biggest edge saves up to (1 - ne/threads) of its
        // build work (the per-edge plan already overlaps `ne` units); it
        // costs one extra parallel pass plus the sequential prefix stitch.
        let saved = self.read_pair * max_pairs as f64 * (1.0 - ne as f64 / threads as f64);
        let overhead = (1.0 + 2.0 * Self::STITCH_UNIT) * self.thread_spawn * threads as f64;
        if saved > overhead {
            ParGranularity::Chunked { chunk_pairs }
        } else {
            ParGranularity::PerEdge
        }
    }

    /// Predicted execution wall time (µs once calibrated; unit-free before)
    /// for a recorded sample's feature vector under *these* weights.
    pub fn predicted_micros(&self, sample: &CostSample) -> f64 {
        let [pairs, refine, scanned] = sample.features();
        self.read_pair * pairs + self.refine_pair * refine + self.scan_edge * scanned
    }

    /// Mean relative estimate error `|predicted − measured| / measured`
    /// of these weights over a log — the calibration-drift gauge. `None`
    /// when the log is empty.
    pub fn mean_relative_error(&self, log: &CostLog) -> Option<f64> {
        if log.is_empty() {
            return None;
        }
        let sum: f64 = log
            .iter()
            .map(|s| {
                let actual = s.wall_micros.max(1.0);
                (self.predicted_micros(s) - actual).abs() / actual
            })
            .sum();
        Some(sum / log.len() as f64)
    }

    /// Least-squares re-fit of `read_pair` / `refine_pair` / `scan_edge`
    /// from measured executions: minimizes `Σ (wall_µs − w·features)²` over
    /// the log (features per [`CostSample::features`]). Weights whose
    /// feature column never appears in the log keep their current value
    /// (there is no signal to fit them); fitted weights are clamped to a
    /// small positive floor so cost comparisons stay well-ordered.
    ///
    /// A **rank-deficient** log — e.g. one plan shape executed repeatedly,
    /// whose feature columns are collinear so *any* read-vs-refine split
    /// fits equally well — must not invent a split and present it as
    /// measured. Such logs fall back to the best global *rescale* of the
    /// current weights (one scalar fit, always well-posed): relative plan
    /// comparisons are preserved while the units become measured
    /// microseconds, which is exactly the information the log does
    /// support. `containment_unit` and `thread_spawn` are not fitted.
    /// Returns `None` when the log has too few samples or no signal.
    pub fn calibrate(&self, log: &CostLog) -> Option<CostModel> {
        let rows: Vec<([f64; 3], f64)> =
            log.iter().map(|s| (s.features(), s.wall_micros)).collect();
        // Only fit columns that actually occur in the log.
        let active: Vec<usize> = (0..3)
            .filter(|&j| rows.iter().any(|(f, _)| f[j] > 0.0))
            .collect();
        if active.is_empty() || rows.len() < active.len() {
            return None;
        }
        let k = active.len();
        // Normal equations AᵀA w = Aᵀb over the active columns.
        let mut ata = vec![vec![0.0f64; k]; k];
        let mut atb = vec![0.0f64; k];
        for (f, wall) in &rows {
            for (i, &ci) in active.iter().enumerate() {
                for (j, &cj) in active.iter().enumerate() {
                    ata[i][j] += f[ci] * f[cj];
                }
                atb[i] += f[ci] * wall;
            }
        }
        // Pivot tolerance relative to the matrix scale: a collinear system
        // must be *detected* (and routed to the rescale fallback), not
        // nudged into an arbitrary solution by regularization.
        let scale = (0..k)
            .map(|i| ata[i][i])
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let Some(solved) = solve(ata, atb, scale * 1e-9) else {
            return self.rescale_fit(&rows);
        };
        let max_w = solved.iter().cloned().fold(0.0f64, f64::max);
        if !max_w.is_finite() || max_w <= 0.0 {
            return self.rescale_fit(&rows);
        }
        // Clamp non-positive components: the fit says the term is ~free,
        // but a zero/negative weight would break plan comparisons.
        let floor = (max_w * 1e-3).max(1e-9);
        let mut fitted = [self.read_pair, self.refine_pair, self.scan_edge];
        for (&col, w) in active.iter().zip(&solved) {
            if !w.is_finite() {
                return None;
            }
            fitted[col] = w.max(floor);
        }
        Some(CostModel {
            read_pair: fitted[0],
            refine_pair: fitted[1],
            scan_edge: fitted[2],
            calibrated: true,
            ..*self
        })
    }

    /// The rank-deficient fallback: the single scalar `α` minimizing
    /// `Σ (wall − α·prediction)²` under the current weights, applied as a
    /// uniform rescale. Preserves every relative plan comparison; converts
    /// the units to measured microseconds.
    fn rescale_fit(&self, rows: &[([f64; 3], f64)]) -> Option<CostModel> {
        let mut num = 0.0;
        let mut den = 0.0;
        for (f, wall) in rows {
            let pred = self.read_pair * f[0] + self.refine_pair * f[1] + self.scan_edge * f[2];
            num += wall * pred;
            den += pred * pred;
        }
        if den <= 0.0 || !num.is_finite() {
            return None;
        }
        let alpha = (num / den).max(f64::MIN_POSITIVE);
        Some(CostModel {
            read_pair: self.read_pair * alpha,
            refine_pair: self.refine_pair * alpha,
            scan_edge: self.scan_edge * alpha,
            calibrated: true,
            ..*self
        })
    }
}

/// Gaussian elimination with partial pivoting for the (≤3×3) normal system;
/// `tol` is the absolute pivot threshold below which the system counts as
/// singular (pass a value relative to the matrix scale).
#[allow(clippy::needless_range_loop)] // elimination indexes two rows of `a` at once
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>, tol: f64) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < tol {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in (col + 1)..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::view::{materialize, ViewDef, ViewSet};
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    fn chain(labels: &[&str]) -> Pattern {
        let mut b = PatternBuilder::new();
        let ids: Vec<_> = labels.iter().map(|l| b.node_labeled(l)).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        b.build().unwrap()
    }

    fn some_stats() -> GraphStats {
        GraphStats {
            nodes: 100_000,
            edges: 400_000,
            avg_out_degree: 4.0,
            max_out_degree: 50,
            max_in_degree: 50,
            labels: 10,
            alpha: 1.1,
        }
    }

    #[test]
    fn pairs_read_matches_merge_choice() {
        // Two views cover the same edge with different extension sizes; the
        // cost model must count only the smaller one (as merge_step reads).
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node(["A"]);
        let b1 = gb.add_node(["B"]);
        let a2 = gb.add_node(["A"]);
        let b2 = gb.add_node(["B"]);
        gb.add_edge(a1, b1);
        gb.add_edge(a2, b2);
        gb.add_edge(a1, b2);
        let g = gb.build();

        let q = chain(&["A", "B"]);
        let views = ViewSet::new(vec![
            ViewDef::new("vab", chain(&["A", "B"])),
            ViewDef::new("vab2", chain(&["A", "B"])),
        ]);
        let plan = contain(&q, &views).unwrap();
        let ext = materialize(&views, &g);
        let cm = CostModel::default();
        let pairs = cm.pairs_read(&plan.lambda, &ext);
        // Both views have the same extension here; the min is one of them.
        assert_eq!(
            pairs,
            ext.edge_set(0, gpv_pattern::PatternEdgeId(0)).len() as u64
        );
    }

    #[test]
    fn view_plans_beat_direct_on_small_extensions() {
        let cm = CostModel::default();
        let q = chain(&["A", "B", "C"]);
        let direct = cm.direct(&q, &some_stats());
        // A view plan reading 10k pairs must be far cheaper.
        assert!(direct.total > cm.read_pair * 10_000.0 * 10.0);
    }

    #[test]
    fn parallel_gate() {
        let cm = CostModel::default();
        assert!(!cm.parallel_pays(100, 1), "never parallel on one thread");
        assert!(!cm.parallel_pays(100, 4), "tiny jobs stay sequential");
        assert!(cm.parallel_pays(1_000_000, 4), "large jobs parallelize");
    }

    /// The granularity decision is driven by the per-edge distribution, not
    /// the total: chunking only pays when there are more workers than edges
    /// *and* a dominant set large enough to amortize the chunked pipeline's
    /// extra pass and stitch.
    #[test]
    fn granularity_from_per_edge_counts() {
        use crate::plan::ParGranularity;
        let cm = CostModel::default();
        // Enough edges to saturate the workers: per-edge, regardless of size.
        assert_eq!(
            cm.parallel_granularity(&[1_000_000; 8], 4),
            ParGranularity::PerEdge
        );
        // The |Eq| ceiling case: 2 edges, 8 workers, one 10M-pair set.
        match cm.parallel_granularity(&[10_000_000, 50], 8) {
            ParGranularity::Chunked { chunk_pairs } => {
                assert!(chunk_pairs >= CostModel::MIN_CHUNK_PAIRS);
                assert!(
                    chunk_pairs <= 10_000_000 / 2,
                    "the dominant set splits into several chunks: {chunk_pairs}"
                );
            }
            g => panic!("expected chunked granularity, got {g:?}"),
        }
        // Small sets: the stitch overhead drowns the savings.
        assert_eq!(
            cm.parallel_granularity(&[100, 50], 8),
            ParGranularity::PerEdge
        );
        // One thread (or none) never chunks.
        assert_eq!(
            cm.parallel_granularity(&[10_000_000], 1),
            ParGranularity::PerEdge
        );
        assert_eq!(cm.parallel_granularity(&[], 8), ParGranularity::PerEdge);
    }

    /// Regression for the `unwrap_or(0)` bug: a partial λ (some entry
    /// empty) fed to the view-only pricer used to price uncovered edges as
    /// *free*, letting a bogus views-only estimate beat a correctly-priced
    /// hybrid (the Direct-vs-Hybrid tie-break then flipped). The view-only
    /// pricer must reject such plans outright.
    #[test]
    fn view_plan_rejects_partial_lambda() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node(["A"]);
        let b = gb.add_node(["B"]);
        let c = gb.add_node(["C"]);
        gb.add_edge(a, b);
        gb.add_edge(b, c);
        let g = gb.build();
        let q = chain(&["A", "B", "C"]);
        let views = ViewSet::new(vec![ViewDef::new("vab", chain(&["A", "B"]))]);
        let ext = materialize(&views, &g);

        // A hand-built "plan" whose second entry is uncovered.
        let partial = crate::partial::partial_contain(&q, &views);
        assert!(!partial.is_total());
        let broken = ContainmentPlan {
            lambda: partial.lambda.clone(),
            used_views: vec![0],
        };
        let cm = CostModel::default();
        let bogus = cm.view_plan(&q, &broken, &ext);
        assert!(
            bogus.total.is_infinite(),
            "partial λ must never price as a views-only plan: {bogus:?}"
        );
        // The tie-break pin: the correctly-priced hybrid and direct plans
        // both beat the rejected views-only estimate.
        let stats = gpv_graph::stats::stats(&g);
        let covered = cm.pairs_read(&partial.lambda, &ext);
        let hybrid = cm.hybrid_plan(&q, covered, partial.uncovered.len(), &stats);
        let direct = cm.direct(&q, &stats);
        assert!(hybrid.total < bogus.total);
        assert!(direct.total < bogus.total);
    }

    #[test]
    fn edge_sourcing_defaults_keep_views() {
        // Extensions are subsets of E(G) and scan_edge > read_pair, so with
        // default weights a covered edge never prefers the graph.
        let cm = CostModel::default();
        let stats = some_stats();
        for pairs in [0, 1, 1_000, stats.edges as u64] {
            assert!(!cm.edge_prefers_graph(3, pairs, &stats));
        }
        // A calibrated model where scanning is measured far cheaper than
        // reading flips the decision for bloated extensions.
        let cheap_scan = CostModel {
            read_pair: 10.0,
            scan_edge: 0.01,
            refine_pair: 0.001,
            ..CostModel::default()
        };
        assert!(cheap_scan.edge_prefers_graph(3, stats.edges as u64, &stats));
        assert!(!cheap_scan.edge_prefers_graph(3, 10, &stats));
    }

    #[test]
    fn cost_log_bounded() {
        let mut log = CostLog::new(3);
        for i in 0..5u64 {
            log.push(CostSample {
                estimate: CostEstimate {
                    pairs_read: i,
                    ..CostEstimate::default()
                },
                stats: JoinStats::default(),
                edge_count: 1,
                wall_micros: i as f64,
            });
        }
        assert_eq!(log.len(), 3);
        let kept: Vec<u64> = log.iter().map(|s| s.estimate.pairs_read).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest samples evicted first");
    }

    fn synthetic_sample(
        pairs: u64,
        merged: u64,
        scanned: u64,
        ne: usize,
        w: (f64, f64, f64),
    ) -> CostSample {
        let s = CostSample {
            estimate: CostEstimate {
                pairs_read: pairs,
                graph_edges_scanned: scanned,
                ..CostEstimate::default()
            },
            stats: JoinStats {
                merged_pairs: merged,
                ..JoinStats::default()
            },
            edge_count: ne,
            wall_micros: 0.0,
        };
        let [f0, f1, f2] = s.features();
        CostSample {
            wall_micros: w.0 * f0 + w.1 * f1 + w.2 * f2,
            ..s
        }
    }

    #[test]
    fn calibrate_recovers_known_weights() {
        let truth = (0.37, 1.9, 6.5);
        let mut log = CostLog::new(64);
        // Diverse samples spanning view-only, hybrid, and direct shapes so
        // the system is well-conditioned.
        for i in 1..12u64 {
            log.push(synthetic_sample(100 * i, 90 * i, 0, 3, truth));
            log.push(synthetic_sample(40 * i, 70 * i, 13 * i, 4, truth));
            log.push(synthetic_sample(0, 0, 50 * i, 2, truth));
        }
        let cm = CostModel::default().calibrate(&log).expect("solvable fit");
        assert!(cm.calibrated);
        assert!(
            (cm.read_pair - truth.0).abs() / truth.0 < 1e-3,
            "{}",
            cm.read_pair
        );
        assert!(
            (cm.refine_pair - truth.1).abs() / truth.1 < 1e-3,
            "{}",
            cm.refine_pair
        );
        assert!(
            (cm.scan_edge - truth.2).abs() / truth.2 < 1e-3,
            "{}",
            cm.scan_edge
        );
        // And the fitted model predicts the log (near-)perfectly while the
        // default unit-free weights do not.
        let err = cm.mean_relative_error(&log).unwrap();
        assert!(err < 1e-6, "fitted error {err}");
        let default_err = CostModel::default().mean_relative_error(&log).unwrap();
        assert!(default_err > err);
    }

    #[test]
    fn calibrate_keeps_unseen_columns() {
        let truth = (2.0, 0.5, 123.0);
        let mut log = CostLog::new(64);
        // Views-only samples: no scan signal at all (and the two active
        // features vary independently, so the fit is identifiable).
        for i in 1..8u64 {
            log.push(synthetic_sample(10 * i, 9 * i, 0, 2, truth));
            log.push(synthetic_sample(25 * i, 3 * i + 40, 0, 3, truth));
        }
        let base = CostModel::default();
        let cm = base.calibrate(&log).expect("fit");
        assert_eq!(cm.scan_edge, base.scan_edge, "no signal: keep default");
        assert!((cm.read_pair - truth.0).abs() / truth.0 < 1e-3);
        assert!((cm.refine_pair - truth.1).abs() / truth.1 < 1e-3);
    }

    /// One plan shape executed repeatedly has collinear feature columns:
    /// no read-vs-refine split is identifiable, so the fit must be a pure
    /// rescale of the current ratios (units become measured), never an
    /// arbitrary split presented as measured.
    #[test]
    fn calibrate_rank_deficient_falls_back_to_rescale() {
        let base = CostModel::default();
        let mut log = CostLog::new(16);
        for _ in 0..4 {
            // wall = 2·(f0 + f1) — exactly twice the default prediction.
            log.push(synthetic_sample(100, 100, 0, 4, (2.0, 2.0, 2.0)));
        }
        let cm = base.calibrate(&log).expect("rescale fallback fits");
        assert!(cm.calibrated);
        let rr = cm.read_pair / base.read_pair;
        let rf = cm.refine_pair / base.refine_pair;
        let rs = cm.scan_edge / base.scan_edge;
        assert!(
            (rr - rf).abs() < 1e-9 && (rr - rs).abs() < 1e-9,
            "uniform rescale, not an invented split: {cm:?}"
        );
        assert!((rr - 2.0).abs() < 1e-9, "α recovers the true scale: {rr}");
        assert!(cm.mean_relative_error(&log).unwrap() < 1e-9);
    }

    #[test]
    fn calibrate_refuses_empty_or_tiny_logs() {
        let cm = CostModel::default();
        assert!(cm.calibrate(&CostLog::new(8)).is_none());
        let mut one = CostLog::new(8);
        one.push(synthetic_sample(10, 10, 5, 2, (1.0, 1.0, 1.0)));
        // One sample, three active columns: underdetermined.
        assert!(cm.calibrate(&one).is_none());
    }
}
