//! The query-plan IR produced by [`crate::engine::QueryEngine::plan`].
//!
//! A plan records the three planner stages explicitly, so callers can
//! inspect (and log, serialize, or replay) exactly which of the paper's
//! algorithms the engine chose and why:
//!
//! 1. **Analyze** — is `Qs ⊑ V` (Theorem 1)? Fully, partially, or not at
//!    all;
//! 2. **Select** — which view subset feeds the join: the full λ from
//!    [`contain`](crate::containment::contain), the irreducible subset from
//!    [`minimal`](crate::minimal::minimal), or the greedy set-cover subset
//!    from [`minimum`](crate::minimum::minimum), chosen by the
//!    [`CostModel`](crate::cost::CostModel);
//! 3. **Execute** — sequential or parallel `MatchJoin`, hybrid join, or
//!    direct `Match` fallback.

use crate::containment::ContainmentPlan;
use crate::cost::CostEstimate;
use crate::matchjoin::JoinStrategy;
use crate::partial::PartialPlan;
use serde::{Deserialize, Serialize};

/// Which view-selection algorithm produced the λ a plan executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionMode {
    /// Every covering view (the raw `contain` λ).
    All,
    /// The irreducible subset from `minimal` (Fig. 5).
    Minimal,
    /// The greedy minimum-cardinality subset from `minimum` (Section V-C).
    Minimum,
}

impl std::fmt::Display for SelectionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SelectionMode::All => "all",
            SelectionMode::Minimal => "minimal",
            SelectionMode::Minimum => "minimum",
        })
    }
}

/// How the join executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStrategy {
    /// Single-threaded, with the given worklist discipline.
    Sequential(JoinStrategy),
    /// The parallel executor ([`crate::parallel`]) on `threads` workers.
    Parallel {
        /// Worker count (`0` = auto-detect at execution time).
        threads: usize,
    },
}

impl std::fmt::Display for ExecStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecStrategy::Sequential(s) => write!(f, "sequential({s:?})"),
            ExecStrategy::Parallel { threads: 0 } => write!(f, "parallel(auto)"),
            ExecStrategy::Parallel { threads } => write!(f, "parallel({threads})"),
        }
    }
}

/// A fully-resolved view-only plan (`Qs ⊑ V`; no graph access at execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViewPlan {
    /// Which selection algorithm chose the views.
    pub selection: SelectionMode,
    /// The selected view indices (ascending).
    pub views: Vec<usize>,
    /// The λ the executor consumes.
    pub plan: ContainmentPlan,
    /// Join execution strategy.
    pub exec: ExecStrategy,
    /// The planner's estimate for this plan.
    pub cost: CostEstimate,
}

/// Why the planner fell back to a graph-reading plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackReason {
    /// `Qs ⋢ V`: no view set covers every query edge.
    NotContained,
    /// The engine holds no views at all.
    NoViews,
    /// The query has no edges; `MatchJoin` is defined via edge match sets,
    /// so node-only queries evaluate directly.
    NoEdges,
}

/// The planner's decision for one query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryPlan {
    /// Answer from materialized views only (Theorem 1 path).
    ViewsOnly(ViewPlan),
    /// Partial coverage: covered edges from views, uncovered from `G`
    /// (the [`crate::partial`] hybrid).
    Hybrid {
        /// The maximal-coverage λ with its uncovered edges.
        partial: PartialPlan,
        /// Why views alone were insufficient.
        reason: FallbackReason,
        /// The planner's estimate for this plan.
        cost: CostEstimate,
    },
    /// Evaluate `Match(Qs, G)` directly (no usable view coverage).
    Direct {
        /// Why views alone were insufficient.
        reason: FallbackReason,
        /// The planner's estimate for this plan.
        cost: CostEstimate,
    },
}

impl QueryPlan {
    /// Whether execution needs access to the data graph — `false` exactly
    /// for the Theorem-1 views-only path.
    ///
    /// ```
    /// use gpv_core::cost::CostEstimate;
    /// use gpv_core::plan::{FallbackReason, QueryPlan};
    /// let direct = QueryPlan::Direct {
    ///     reason: FallbackReason::NoViews,
    ///     cost: CostEstimate::default(),
    /// };
    /// assert!(direct.needs_graph());
    /// ```
    pub fn needs_graph(&self) -> bool {
        !matches!(self, QueryPlan::ViewsOnly(_))
    }

    /// The planner's cost estimate.
    pub fn cost(&self) -> &CostEstimate {
        match self {
            QueryPlan::ViewsOnly(vp) => &vp.cost,
            QueryPlan::Hybrid { cost, .. } => cost,
            QueryPlan::Direct { cost, .. } => cost,
        }
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryPlan::ViewsOnly(vp) => {
                writeln!(f, "Plan: views-only MatchJoin (Qs ⊑ V)")?;
                writeln!(f, "  select : {} -> views {:?}", vp.selection, vp.views)?;
                writeln!(f, "  execute: {}", vp.exec)?;
                write!(
                    f,
                    "  cost   : {:.0} ({} pairs read, 0 graph edges)",
                    vp.cost.total, vp.cost.pairs_read
                )?;
                if vp.cost.planning > 0.0 {
                    write!(f, " + {:.0} planning", vp.cost.planning)?;
                }
                Ok(())
            }
            QueryPlan::Hybrid { partial, cost, .. } => {
                let covered = partial.lambda.iter().filter(|l| !l.is_empty()).count();
                writeln!(
                    f,
                    "Plan: hybrid join ({} covered, {} uncovered edges)",
                    covered,
                    partial.uncovered.len()
                )?;
                write!(
                    f,
                    "  cost   : {:.0} ({} pairs read, {} graph edges scanned)",
                    cost.total, cost.pairs_read, cost.graph_edges_scanned
                )
            }
            QueryPlan::Direct { reason, cost } => {
                writeln!(f, "Plan: direct Match on G ({reason:?})")?;
                write!(
                    f,
                    "  cost   : {:.0} ({} graph edges scanned)",
                    cost.total, cost.graph_edges_scanned
                )
            }
        }
    }
}
