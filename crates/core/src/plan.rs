//! The query-plan IR produced by [`crate::engine::QueryEngine::plan`].
//!
//! A plan records the three planner stages explicitly, so callers can
//! inspect (and log, serialize, or replay) exactly which of the paper's
//! algorithms the engine chose and why:
//!
//! 1. **Analyze** — is `Qs ⊑ V` (Theorem 1)? Fully, partially, or not at
//!    all;
//! 2. **Select** — which view subset feeds the join: the full λ from
//!    [`contain`](crate::containment::contain), the irreducible subset from
//!    [`minimal`](crate::minimal::minimal), or the greedy set-cover subset
//!    from [`minimum`](crate::minimum::minimum), chosen by the
//!    [`CostModel`](crate::cost::CostModel) — plus, per query edge, the
//!    cost-based **source** decision ([`EdgeSource`]): read the smallest
//!    covering extension, or scan `G` surgically when the calibrated
//!    weights price the extension as more expensive than the scan;
//! 3. **Execute** — sequential or parallel `MatchJoin`, hybrid join, or
//!    direct `Match` fallback. The merge honors the per-edge sources
//!    verbatim (both executors), so EXPLAIN shows exactly what will run.

use crate::containment::{ContainmentPlan, ViewEdgeRef};
use crate::cost::CostEstimate;
use crate::matchjoin::JoinStrategy;
use crate::partial::PartialPlan;
use serde::{Deserialize, Serialize};

/// Which view-selection algorithm produced the λ a plan executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionMode {
    /// Every covering view (the raw `contain` λ).
    All,
    /// The irreducible subset from `minimal` (Fig. 5).
    Minimal,
    /// The greedy minimum-cardinality subset from `minimum` (Section V-C).
    Minimum,
}

impl std::fmt::Display for SelectionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SelectionMode::All => "all",
            SelectionMode::Minimal => "minimal",
            SelectionMode::Minimum => "minimum",
        })
    }
}

/// Where the merge step reads one query edge's initial match set from —
/// the per-edge outcome of cost-based hybrid sourcing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeSource {
    /// Read the materialized extension of this view edge (the smallest
    /// covering one; pinned here so the executor reads exactly what the
    /// planner priced).
    View(ViewEdgeRef),
    /// Scan the data graph surgically for this edge's candidate pairs.
    Graph,
}

impl std::fmt::Display for EdgeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeSource::View(r) => write!(f, "view {} edge {}", r.view, r.edge.index()),
            EdgeSource::Graph => f.write_str("graph scan"),
        }
    }
}

/// Renders a source vector as one compact EXPLAIN line fragment, e.g.
/// `e0<-V0.e0 e1<-G`.
pub(crate) fn fmt_sources(sources: &[EdgeSource]) -> String {
    sources
        .iter()
        .enumerate()
        .map(|(ei, s)| match s {
            EdgeSource::View(r) => format!("e{ei}<-V{}.e{}", r.view, r.edge.index()),
            EdgeSource::Graph => format!("e{ei}<-G"),
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders the active cost weights for EXPLAIN output.
pub(crate) fn fmt_weights(cost: &CostEstimate) -> String {
    let w = &cost.weights;
    format!(
        "read_pair={:.3} refine_pair={:.3} scan_edge={:.3} ({})",
        w.read_pair,
        w.refine_pair,
        w.scan_edge,
        if w.calibrated {
            "calibrated"
        } else {
            "default"
        }
    )
}

/// How the serving layer satisfied one query — the per-query cache
/// disposition surfaced in EXPLAIN output and the `gpv serve` report.
/// Ordered from cheapest to most expensive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheDisposition {
    /// The answer was fanned out from an identical query earlier in the
    /// same batch (no cache probe, no planning, no execution).
    Deduplicated,
    /// The answer came from the cross-batch result cache (no planning, no
    /// execution).
    ResultCache,
    /// The plan came from the plan cache; only execution ran.
    PlanCache,
    /// Planned and executed from scratch.
    Planned,
}

impl std::fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CacheDisposition::Deduplicated => "deduped",
            CacheDisposition::ResultCache => "result cached",
            CacheDisposition::PlanCache => "plan cached",
            CacheDisposition::Planned => "planned",
        })
    }
}

/// How the parallel executor splits the fixpoint stages into work units —
/// the granularity dimension of [`ExecStrategy::Parallel`].
///
/// `PerEdge` fans one work unit per pattern edge, so its speedup ceiling is
/// `|Eq|`: a 2-edge query over a 10M-pair merge can use at most 2 cores.
/// `Chunked` splits each edge's pair set into fixed, index-determined
/// chunks of `chunk_pairs` pairs and fans *(edge, chunk)* units instead,
/// breaking that ceiling. Chunk boundaries are fixed by index, never by
/// timing, so both granularities produce bit-identical output (see
/// [`crate::parallel`] for the determinism argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParGranularity {
    /// One work unit per pattern edge (speedup ceiling `|Eq|`).
    PerEdge,
    /// *(edge, chunk)* work units of at most `chunk_pairs` pairs each —
    /// intra-edge parallelism for queries with few edges but huge merges.
    Chunked {
        /// Pairs per chunk (≥ 1; the planner derives it from the largest
        /// per-edge pair count and the worker count).
        chunk_pairs: usize,
    },
}

impl std::fmt::Display for ParGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParGranularity::PerEdge => f.write_str("per-edge"),
            ParGranularity::Chunked { chunk_pairs } => write!(f, "chunked:{chunk_pairs}"),
        }
    }
}

/// How the join executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStrategy {
    /// Single-threaded, with the given worklist discipline.
    Sequential(JoinStrategy),
    /// The parallel executor ([`crate::parallel`]) on `threads` workers.
    Parallel {
        /// Worker count (`0` = auto-detect at execution time).
        threads: usize,
        /// How the fixpoint stages split into work units (per pattern edge,
        /// or chunked within each edge's pair set).
        granularity: ParGranularity,
    },
}

impl std::fmt::Display for ExecStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecStrategy::Sequential(s) => write!(f, "sequential({s:?})"),
            ExecStrategy::Parallel {
                threads: 0,
                granularity,
            } => {
                write!(f, "parallel(auto, {granularity})")
            }
            ExecStrategy::Parallel {
                threads,
                granularity,
            } => write!(f, "parallel({threads}, {granularity})"),
        }
    }
}

/// A fully-resolved view-only plan (`Qs ⊑ V`; no graph access at execution).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViewPlan {
    /// Which selection algorithm chose the views.
    pub selection: SelectionMode,
    /// The selected view indices (ascending).
    pub views: Vec<usize>,
    /// The λ the executor consumes.
    pub plan: ContainmentPlan,
    /// Per-edge merge source (all [`EdgeSource::View`] here — the pinned
    /// smallest covering extension per edge).
    pub sources: Vec<EdgeSource>,
    /// Join execution strategy.
    pub exec: ExecStrategy,
    /// The planner's estimate for this plan.
    pub cost: CostEstimate,
}

/// Why the planner fell back to a graph-reading plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackReason {
    /// `Qs ⋢ V`: no view set covers every query edge.
    NotContained,
    /// The engine holds no views at all.
    NoViews,
    /// The query has no edges; `MatchJoin` is defined via edge match sets,
    /// so node-only queries evaluate directly.
    NoEdges,
    /// The views cover the query, but the (calibrated) cost model priced
    /// some covered edges cheaper as surgical graph scans than as
    /// extension reads.
    CostBased,
}

/// The planner's decision for one query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum QueryPlan {
    /// Answer from materialized views only (Theorem 1 path).
    ViewsOnly(ViewPlan),
    /// Mixed sourcing: some edges read views, some scan `G` — either
    /// because coverage is partial (the [`crate::partial`] hybrid) or
    /// because the cost model priced a covered edge cheaper from `G`.
    Hybrid {
        /// The maximal-coverage λ with its uncovered edges.
        partial: PartialPlan,
        /// Per-edge merge source (what the executor honors).
        sources: Vec<EdgeSource>,
        /// Why views alone were insufficient (or not worth it).
        reason: FallbackReason,
        /// The planner's estimate for this plan.
        cost: CostEstimate,
    },
    /// Evaluate `Match(Qs, G)` directly (no usable view coverage).
    Direct {
        /// Why views alone were insufficient.
        reason: FallbackReason,
        /// The planner's estimate for this plan.
        cost: CostEstimate,
    },
}

impl QueryPlan {
    /// Whether execution needs access to the data graph — `false` exactly
    /// for the Theorem-1 views-only path.
    ///
    /// ```
    /// use gpv_core::cost::CostEstimate;
    /// use gpv_core::plan::{FallbackReason, QueryPlan};
    /// let direct = QueryPlan::Direct {
    ///     reason: FallbackReason::NoViews,
    ///     cost: CostEstimate::default(),
    /// };
    /// assert!(direct.needs_graph());
    /// ```
    pub fn needs_graph(&self) -> bool {
        !matches!(self, QueryPlan::ViewsOnly(_))
    }

    /// Whether the plan can still execute when no graph is supplied:
    /// views-only plans trivially, and cost-based hybrids whose coverage
    /// is *total* — every graph-sourced edge there has a covering
    /// extension to fall back to, so the demotion is a performance
    /// preference, never an availability requirement. Strict Theorem-1
    /// serving uses this to keep answering covered queries after a
    /// calibration demotes some of their edges.
    pub fn graph_optional(&self) -> bool {
        match self {
            QueryPlan::ViewsOnly(_) => true,
            QueryPlan::Hybrid { partial, .. } => partial.is_total(),
            QueryPlan::Direct { .. } => false,
        }
    }

    /// The planner's cost estimate.
    pub fn cost(&self) -> &CostEstimate {
        match self {
            QueryPlan::ViewsOnly(vp) => &vp.cost,
            QueryPlan::Hybrid { cost, .. } => cost,
            QueryPlan::Direct { cost, .. } => cost,
        }
    }

    /// The per-edge merge sources, when the plan has a merge step
    /// (`None` for direct plans, which bypass `MatchJoin` entirely).
    pub fn sources(&self) -> Option<&[EdgeSource]> {
        match self {
            QueryPlan::ViewsOnly(vp) => Some(&vp.sources),
            QueryPlan::Hybrid { sources, .. } => Some(sources),
            QueryPlan::Direct { .. } => None,
        }
    }

    /// The positional indices of every view this plan reads, ascending and
    /// deduplicated — the footprint the epoch-keyed result cache stamps an
    /// answer with. Views-only plans contribute their whole selected set
    /// (the λ may consult any of them during refinement); hybrids
    /// contribute the view-sourced edges; direct plans read no views.
    pub fn view_indices(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = match self {
            QueryPlan::ViewsOnly(vp) => vp
                .views
                .iter()
                .copied()
                .chain(vp.sources.iter().filter_map(|s| match s {
                    EdgeSource::View(r) => Some(r.view),
                    EdgeSource::Graph => None,
                }))
                .collect(),
            QueryPlan::Hybrid { sources, .. } => sources
                .iter()
                .filter_map(|s| match s {
                    EdgeSource::View(r) => Some(r.view),
                    EdgeSource::Graph => None,
                })
                .collect(),
            QueryPlan::Direct { .. } => Vec::new(),
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryPlan::ViewsOnly(vp) => {
                writeln!(f, "Plan: views-only MatchJoin (Qs ⊑ V)")?;
                writeln!(f, "  select : {} -> views {:?}", vp.selection, vp.views)?;
                writeln!(f, "  sources: {}", fmt_sources(&vp.sources))?;
                writeln!(f, "  execute: {}", vp.exec)?;
                write!(
                    f,
                    "  cost   : {:.0} ({} pairs read, 0 graph edges)",
                    vp.cost.total, vp.cost.pairs_read
                )?;
                if vp.cost.planning > 0.0 {
                    write!(f, " + {:.0} planning", vp.cost.planning)?;
                }
                write!(f, "\n  weights: {}", fmt_weights(&vp.cost))
            }
            QueryPlan::Hybrid {
                sources,
                reason,
                cost,
                ..
            } => {
                let from_views = sources
                    .iter()
                    .filter(|s| matches!(s, EdgeSource::View(_)))
                    .count();
                let from_graph = sources.len() - from_views;
                writeln!(
                    f,
                    "Plan: hybrid join ({from_views} view-sourced, {from_graph} graph-sourced edges; {reason:?})"
                )?;
                writeln!(f, "  sources: {}", fmt_sources(sources))?;
                write!(
                    f,
                    "  cost   : {:.0} ({} pairs read, {} graph edges scanned)",
                    cost.total, cost.pairs_read, cost.graph_edges_scanned
                )?;
                write!(f, "\n  weights: {}", fmt_weights(cost))
            }
            QueryPlan::Direct { reason, cost } => {
                writeln!(f, "Plan: direct Match on G ({reason:?})")?;
                write!(
                    f,
                    "  cost   : {:.0} ({} graph edges scanned)",
                    cost.total, cost.graph_edges_scanned
                )?;
                write!(f, "\n  weights: {}", fmt_weights(cost))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// EXPLAIN must name the chosen parallel granularity — the `execute:`
    /// line is how `gpv plan` / `gpv serve --explain` surface it.
    #[test]
    fn exec_strategy_display_names_granularity() {
        assert_eq!(
            ExecStrategy::Sequential(JoinStrategy::RankedBottomUp).to_string(),
            "sequential(RankedBottomUp)"
        );
        assert_eq!(
            ExecStrategy::Parallel {
                threads: 0,
                granularity: ParGranularity::PerEdge,
            }
            .to_string(),
            "parallel(auto, per-edge)"
        );
        assert_eq!(
            ExecStrategy::Parallel {
                threads: 8,
                granularity: ParGranularity::Chunked { chunk_pairs: 65536 },
            }
            .to_string(),
            "parallel(8, chunked:65536)"
        );
    }
}
