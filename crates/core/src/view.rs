//! View definitions, view sets and materialized view extensions
//! (paper Section II-B).
//!
//! A *view definition* `V` is itself a graph pattern query; its *extension*
//! `V(G)` in a data graph `G` is the query result — the per-edge match sets
//! `{(eV, S_eV)}`. Answering a query using views means computing `Qs(G)`
//! from `V(G) = {V1(G), ..., Vn(G)}` alone, never touching `G`.

use crate::compact::CompactView;
use gpv_graph::DataGraph;
use gpv_matching::simulation::match_pattern;
use gpv_pattern::Pattern;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A named view definition (a plain pattern query).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViewDef {
    /// Human-readable name (e.g. `"V1"`).
    pub name: String,
    /// The defining pattern query.
    pub pattern: Pattern,
}

impl ViewDef {
    /// Creates a named view.
    pub fn new(name: impl Into<String>, pattern: Pattern) -> Self {
        ViewDef {
            name: name.into(),
            pattern,
        }
    }
}

/// A set `V = {V1, ..., Vn}` of view definitions.
#[derive(Clone, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct ViewSet {
    views: Vec<ViewDef>,
}

impl ViewSet {
    /// Creates a view set.
    pub fn new(views: Vec<ViewDef>) -> Self {
        ViewSet { views }
    }

    /// The paper's `card(V)`: number of view definitions.
    pub fn card(&self) -> usize {
        self.views.len()
    }

    /// The paper's `|V|`: total size (nodes + edges) of all definitions.
    pub fn size(&self) -> usize {
        self.views.iter().map(|v| v.pattern.size()).sum()
    }

    /// The view definitions in order.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// The `i`-th view.
    pub fn get(&self, i: usize) -> &ViewDef {
        &self.views[i]
    }

    /// Adds a view, returning its index.
    pub fn push(&mut self, v: ViewDef) -> usize {
        self.views.push(v);
        self.views.len() - 1
    }

    /// Restricts to the views at `indices` (e.g. a minimal/minimum subset).
    pub fn subset(&self, indices: &[usize]) -> ViewSet {
        ViewSet {
            views: indices.iter().map(|&i| self.views[i].clone()).collect(),
        }
    }

    /// Iterates `(index, view)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &ViewDef)> {
        self.views.iter().enumerate()
    }
}

impl From<Vec<ViewDef>> for ViewSet {
    fn from(views: Vec<ViewDef>) -> Self {
        ViewSet::new(views)
    }
}

/// Materialized view extensions `V(G) = {V1(G), ..., Vn(G)}`, the cached
/// query results the join algorithms read instead of `G`.
///
/// Since the columnar-arena refactor this is the flat
/// [`CompactExtensions`](crate::compact::CompactExtensions): each view's
/// extension is a contiguous CSR-of-pairs region
/// ([`CompactView`]) behind an [`Arc`], so an
/// engine rebuild after a store mutation clones `n` pointers, not `|V(G)|`
/// pairs, and [`edge_set`](crate::compact::CompactExtensions::edge_set)
/// resolves to a borrowed flat slice with no per-pair indirection. The JSON
/// wire shape is unchanged (extensions serialize as boxed
/// [`MatchResult`](gpv_matching::result::MatchResult)s).
pub type ViewExtensions = crate::compact::CompactExtensions;

/// Materializes every view of `views` over `g` using the `Match` engine —
/// the "pick and cache previous query results" step of the paper — and
/// freezes each result into its columnar arena region.
pub fn materialize(views: &ViewSet, g: &DataGraph) -> ViewExtensions {
    ViewExtensions {
        extensions: views
            .views()
            .iter()
            .map(|v| Arc::new(CompactView::freeze(&match_pattern(&v.pattern, g))))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::{GraphBuilder, NodeId};
    use gpv_pattern::{PatternBuilder, PatternEdgeId};

    fn pattern_ab() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let c = b.node_labeled("B");
        b.edge(a, c);
        b.build().unwrap()
    }

    fn pattern_bc() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, c);
        b.build().unwrap()
    }

    fn graph_abc() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let x = b.add_node(["B"]);
        let c = b.add_node(["C"]);
        b.add_edge(a, x);
        b.add_edge(x, c);
        b.build()
    }

    #[test]
    fn cardinality_and_size() {
        let vs = ViewSet::new(vec![
            ViewDef::new("V1", pattern_ab()),
            ViewDef::new("V2", pattern_bc()),
        ]);
        assert_eq!(vs.card(), 2);
        assert_eq!(vs.size(), 6); // each pattern: 2 nodes + 1 edge
        assert_eq!(vs.get(0).name, "V1");
    }

    #[test]
    fn subset_selects() {
        let vs = ViewSet::new(vec![
            ViewDef::new("V1", pattern_ab()),
            ViewDef::new("V2", pattern_bc()),
        ]);
        let sub = vs.subset(&[1]);
        assert_eq!(sub.card(), 1);
        assert_eq!(sub.get(0).name, "V2");
    }

    #[test]
    fn materialize_extensions() {
        let vs = ViewSet::new(vec![
            ViewDef::new("V1", pattern_ab()),
            ViewDef::new("V2", pattern_bc()),
        ]);
        let g = graph_abc();
        let ext = materialize(&vs, &g);
        assert_eq!(ext.extensions.len(), 2);
        assert_eq!(ext.size(), 2);
        assert_eq!(ext.edge_set(0, PatternEdgeId(0)), &[(NodeId(0), NodeId(1))]);
        assert_eq!(ext.edge_set(1, PatternEdgeId(0)), &[(NodeId(1), NodeId(2))]);
    }

    #[test]
    fn empty_extension_when_no_match() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("Z");
        let y = b.node_labeled("A");
        b.edge(x, y);
        let vz = b.build().unwrap();
        let vs = ViewSet::new(vec![ViewDef::new("VZ", vz)]);
        let ext = materialize(&vs, &graph_abc());
        assert_eq!(ext.size(), 0);
        assert_eq!(ext.edge_set(0, PatternEdgeId(0)), &[]);
    }
}
