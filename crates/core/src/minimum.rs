//! Minimum containment (MMCP) — algorithm `minimum`
//! (paper Section V-C).
//!
//! Finding a *minimum-cardinality* subset of `V` containing `Qs` is
//! NP-complete and APX-hard (Theorem 6, by reduction from set cover), but
//! greedily picking the view whose view match covers the most uncovered
//! query edges achieves the classic `O(log |Ep|)` approximation ratio, in
//! `O(card(V)|Qs|² + |V|² + |Qs||V| + (|Qs|·card(V))^{3/2})` time.

use crate::minimal::{Selection, ViewMatchTable};
use crate::view::ViewSet;
use gpv_pattern::Pattern;

/// Algorithm `minimum`: greedy set-cover selection of views. Returns `None`
/// when `Qs ⋢ V`; otherwise the selection satisfies
/// `card(V') ≤ log(|Ep|) · card(V_OPT)`.
pub fn minimum(q: &Pattern, views: &ViewSet) -> Option<Selection> {
    minimum_from_table(q, &ViewMatchTable::build(q, views))
}

/// [`minimum`] over an already-built table (the engine builds the table
/// once and shares it across `contain`/`minimal`/`minimum`).
pub(crate) fn minimum_from_table(q: &Pattern, table: &ViewMatchTable) -> Option<Selection> {
    let ne = q.edge_count();

    let mut covered = vec![false; ne];
    let mut covered_count = 0usize;
    let mut available: Vec<usize> = (0..table.covers.len()).collect();
    let mut selected: Vec<usize> = Vec::new();

    while covered_count < ne {
        // α(V) = |M^Qs_V \ Ec| / |Ep|: pick the view covering the most
        // uncovered edges (the denominator is constant, so compare
        // numerators; ties resolve to the lower index, matching a stable
        // scan).
        let (best_pos, best_gain) = available
            .iter()
            .enumerate()
            .map(|(pos, &vi)| {
                let gain = table.covers[vi]
                    .iter()
                    .filter(|e| !covered[e.index()])
                    .count();
                (pos, gain)
            })
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))?;
        if best_gain == 0 {
            return None; // Remaining views add nothing: Qs ⋢ V.
        }
        let vi = available.swap_remove(best_pos);
        selected.push(vi);
        for e in &table.covers[vi] {
            if !covered[e.index()] {
                covered[e.index()] = true;
                covered_count += 1;
            }
        }
    }

    selected.sort_unstable();
    let plan = table.plan_for(q, &selected).expect("selection covers Qs");
    Some(Selection {
        views: selected,
        plan,
    })
}

/// The paper's metric `α(V) = |M^Qs_V \ Ec| / |Ep|` for a single view given
/// an already-covered edge set; exposed for tests and the benchmark harness.
pub fn alpha(q: &Pattern, views: &ViewSet, view: usize, covered: &[bool]) -> f64 {
    let table = ViewMatchTable::build(q, views);
    let gain = table.covers[view]
        .iter()
        .filter(|e| !covered[e.index()])
        .count();
    gain as f64 / q.edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::contain;
    use crate::minimal::minimal;
    use crate::view::ViewDef;
    use gpv_pattern::PatternBuilder;

    fn fig4_query() -> Pattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        b.edge(c, d);
        b.edge(bb, e);
        b.build().unwrap()
    }

    fn single_edge(from: &str, to: &str) -> Pattern {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled(from);
        let y = b.node_labeled(to);
        b.edge(x, y);
        b.build().unwrap()
    }

    fn fig4_views() -> ViewSet {
        let mut views = Vec::new();
        views.push(ViewDef::new("V1", single_edge("C", "D")));
        views.push(ViewDef::new("V2", single_edge("B", "E")));
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge(a, bb);
        b.edge(a, c);
        views.push(ViewDef::new("V3", b.build().unwrap()));
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(bb, d);
        b.edge(c, d);
        views.push(ViewDef::new("V4", b.build().unwrap()));
        let mut b = PatternBuilder::new();
        let bb = b.node_labeled("B");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(bb, d);
        b.edge(bb, e);
        views.push(ViewDef::new("V5", b.build().unwrap()));
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(c, d);
        views.push(ViewDef::new("V6", b.build().unwrap()));
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        views.push(ViewDef::new("V7", b.build().unwrap()));
        ViewSet::new(views)
    }

    #[test]
    fn paper_example_7() {
        // Greedy picks V6 (α = 3/5 = 0.6), then V5 (α = 2/5 = 0.4):
        // V' = {V5, V6}.
        let sel = minimum(&fig4_query(), &fig4_views()).expect("contained");
        assert_eq!(sel.views, vec![4, 5], "paper: {{V5, V6}}");
    }

    #[test]
    fn minimum_not_larger_than_minimal_here() {
        let q = fig4_query();
        let views = fig4_views();
        let mnl = minimal(&q, &views).unwrap();
        let min = minimum(&q, &views).unwrap();
        assert!(min.views.len() <= mnl.views.len());
        assert_eq!(min.views.len(), 2);
        assert_eq!(mnl.views.len(), 3);
    }

    #[test]
    fn alpha_values_match_paper() {
        let q = fig4_query();
        let views = fig4_views();
        let none = vec![false; q.edge_count()];
        assert!(
            (alpha(&q, &views, 5, &none) - 0.6).abs() < 1e-9,
            "α(V6)=0.6"
        );
        assert!(
            (alpha(&q, &views, 0, &none) - 0.2).abs() < 1e-9,
            "α(V1)=0.2"
        );
    }

    #[test]
    fn not_contained_returns_none() {
        let q = fig4_query();
        let views = fig4_views().subset(&[0, 1]);
        assert!(minimum(&q, &views).is_none());
    }

    #[test]
    fn plan_valid_and_within_ratio() {
        let q = fig4_query();
        let views = fig4_views();
        let sel = minimum(&q, &views).unwrap();
        // Plan consistency.
        assert!(contain(&q, &views.subset(&sel.views)).is_some());
        // log ratio sanity: |Ep| = 5, OPT = 2 ⇒ bound ≈ 2·log2(5) ≈ 4.6.
        assert!(sel.views.len() as f64 <= 2.0 * (q.edge_count() as f64).log2().max(1.0));
    }

    #[test]
    fn empty_views() {
        assert!(minimum(&fig4_query(), &ViewSet::default()).is_none());
    }
}
