//! Criterion bench for the paper's Fig. 8(j): BMatch vs BMatchJoin on the
//! Citation emulator (uniform edge bound fe(e) = 3).
//! The full sweep is produced by `repro fig8j`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{bounded, Dataset};
use gpv_core::bcontainment::{bminimal, bminimum};
use gpv_core::bmatchjoin::bmatch_join_with;
use gpv_core::matchjoin::JoinStrategy;
use gpv_matching::bounded::bmatch_pattern;

fn bench(c: &mut Criterion) {
    let s = bounded(Dataset::Citation, 14_000, (6, 12), 3, 42);
    let sel_mnl = bminimal(&s.query, &s.views).expect("contained");
    let sel_min = bminimum(&s.query, &s.views).expect("contained");

    let mut g = c.benchmark_group("fig8j");
    g.sample_size(10);
    g.bench_function("BMatch", |b| {
        b.iter(|| std::hint::black_box(bmatch_pattern(&s.query, &s.g)))
    });
    g.bench_function("BMatchJoin_mnl", |b| {
        b.iter(|| {
            std::hint::black_box(
                bmatch_join_with(
                    &s.query,
                    &sel_mnl.plan,
                    &s.ext,
                    JoinStrategy::RankedBottomUp,
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("BMatchJoin_min", |b| {
        b.iter(|| {
            std::hint::black_box(
                bmatch_join_with(
                    &s.query,
                    &sel_min.plan,
                    &s.ext,
                    JoinStrategy::RankedBottomUp,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
