//! Criterion bench for Fig. 8(e): MatchJoin_min across query sizes Q1..Q4
//! ((4,8)..(7,14)) on a fixed synthetic graph. Full sweep: `repro fig8e`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{plain, Dataset};
use gpv_core::matchjoin::{match_join_with, JoinStrategy};
use gpv_core::minimum::minimum;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8e");
    g.sample_size(15);
    for (i, size) in [(4, 8), (5, 10), (6, 12), (7, 14)].into_iter().enumerate() {
        let s = plain(Dataset::Synthetic, 12_000, size, 42 + i as u64);
        let sel = minimum(&s.query, &s.views).expect("contained");
        g.bench_function(format!("MatchJoin_min/Q{}", i + 1), |b| {
            b.iter(|| {
                std::hint::black_box(
                    match_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::RankedBottomUp)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
