//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * merge narrowing — the literal Fig. 2 union merge vs. the
//!   single-witness merge (`merge_step_union` vs `merge_step`);
//! * worklist strategy — rank-bucketed bottom-up vs naive rescan, on both
//!   merge variants.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{plain, Dataset};
use gpv_core::matchjoin::{match_join_union_with, match_join_with, JoinStrategy};
use gpv_core::minimum::minimum;

fn bench(c: &mut Criterion) {
    let s = plain(Dataset::Densification(1.2), 20_000, (4, 6), 42);
    let sel = minimum(&s.query, &s.views).expect("contained");

    let mut g = c.benchmark_group("ablations");
    g.sample_size(20);
    g.bench_function("narrowed+ranked", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::RankedBottomUp).unwrap(),
            )
        })
    });
    g.bench_function("narrowed+naive", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::NaiveFixpoint).unwrap(),
            )
        })
    });
    g.bench_function("union+ranked", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_union_with(&s.query, &sel.plan, &s.ext, JoinStrategy::RankedBottomUp)
                    .unwrap(),
            )
        })
    });
    g.bench_function("union+naive", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_union_with(&s.query, &sel.plan, &s.ext, JoinStrategy::NaiveFixpoint)
                    .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
