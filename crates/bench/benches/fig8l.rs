//! Criterion bench for Fig. 8(l): bounded scalability with |G| on synthetic
//! graphs (Q = (4,6), fe = 3). Full sweep: `repro fig8l`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{bounded, Dataset};
use gpv_core::bcontainment::bminimum;
use gpv_core::bmatchjoin::bmatch_join_with;
use gpv_core::matchjoin::JoinStrategy;
use gpv_matching::bounded::bmatch_pattern;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8l");
    g.sample_size(10);
    for n in [6_000usize, 20_000] {
        let s = bounded(Dataset::Synthetic, n, (4, 6), 3, 42);
        let sel = bminimum(&s.query, &s.views).expect("contained");
        g.bench_function(format!("BMatch/|V|={n}"), |b| {
            b.iter(|| std::hint::black_box(bmatch_pattern(&s.query, &s.g)))
        });
        g.bench_function(format!("BMatchJoin_min/|V|={n}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    bmatch_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::RankedBottomUp)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
