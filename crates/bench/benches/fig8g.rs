//! Criterion bench for Fig. 8(g): `contain` on DAG vs cyclic patterns.
//! Full size sweep: `repro fig8g`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_core::containment::contain;
use gpv_generator::{covering_views, random_pattern, PatternShape, DEFAULT_ALPHABET};

fn bench(c: &mut Criterion) {
    let pool: Vec<_> = (0..8)
        .map(|i| random_pattern(5, 8, &DEFAULT_ALPHABET, PatternShape::Any, 100 + i))
        .collect();
    let views = covering_views(&pool, 3, 7);
    let dag = random_pattern(10, 20, &DEFAULT_ALPHABET, PatternShape::Dag, 1);
    let cyc = random_pattern(10, 20, &DEFAULT_ALPHABET, PatternShape::Cyclic, 2);

    let mut g = c.benchmark_group("fig8g");
    g.bench_function("contain/QDAG(10,20)", |b| {
        b.iter(|| std::hint::black_box(contain(&dag, &views)))
    });
    g.bench_function("contain/QCyclic(10,20)", |b| {
        b.iter(|| std::hint::black_box(contain(&cyc, &views)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
