//! Criterion bench for Fig. 8(f): the rank-based bottom-up optimization vs
//! the literal Fig. 2 fixpoint, on a densification-law graph (α = 1.15).
//! Full α sweep: `repro fig8f`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{plain, Dataset};
use gpv_core::matchjoin::{match_join_with, JoinStrategy};
use gpv_core::minimum::minimum;

fn bench(c: &mut Criterion) {
    let s = plain(Dataset::Densification(1.15), 8_000, (4, 6), 42);
    let sel = minimum(&s.query, &s.views).expect("contained");
    let mut g = c.benchmark_group("fig8f");
    g.sample_size(20);
    g.bench_function("MatchJoin_nopt", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::NaiveFixpoint).unwrap(),
            )
        })
    });
    g.bench_function("MatchJoin_min", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::RankedBottomUp).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
