//! Benches for the extension modules: incremental view maintenance
//! (delete propagation vs full rematerialization) and pattern minimization.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_core::maintenance::IncrementalView;
use gpv_core::minimize::minimize;
use gpv_generator::{random_graph, random_pattern, PatternShape, DEFAULT_ALPHABET};
use gpv_graph::NodeId;
use gpv_matching::simulation::match_pattern;

fn bench(c: &mut Criterion) {
    let g = random_graph(20_000, 40_000, &DEFAULT_ALPHABET, 42);
    let q = random_pattern(4, 6, &DEFAULT_ALPHABET, PatternShape::Any, 7);
    let edges: Vec<(NodeId, NodeId)> = g.edges().take(64).collect();

    let mut grp = c.benchmark_group("extensions");
    grp.sample_size(10);
    // Incremental deletion repair vs recomputation from scratch: the
    // incremental engine propagates 64 deletions through its support
    // counters, versus re-running Match on the mutated graph (what a
    // non-incremental cache would do after *each* change — here it is
    // charged only once per batch, so the comparison favours the baseline).
    let base_view = IncrementalView::new(q.clone(), &g);
    grp.bench_function("maintenance/incremental-64-deletes", |b| {
        b.iter_batched(
            || base_view.clone(),
            |mut view| {
                for &(u, v) in &edges {
                    view.delete_edge(u, v);
                }
                std::hint::black_box(view.result().size())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    grp.bench_function("maintenance/full-rematerialize", |b| {
        b.iter(|| std::hint::black_box(match_pattern(&q, &g).size()))
    });
    // Pattern minimization on a symmetric 10-node cyclic pattern.
    let sym = {
        let mut b = gpv_pattern::PatternBuilder::new();
        let hub = b.node_labeled("H");
        for _ in 0..4 {
            let x = b.node_labeled("X");
            let y = b.node_labeled("Y");
            b.edge(hub, x);
            b.edge(x, y);
            b.edge(y, x);
        }
        b.build().unwrap()
    };
    grp.bench_function("minimize/symmetric-13-node", |b| {
        b.iter(|| std::hint::black_box(minimize(&sym).pattern.size()))
    });
    grp.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
