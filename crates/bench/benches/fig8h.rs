//! Criterion bench for Fig. 8(h): `minimum` vs `minimal` selection cost on
//! cyclic patterns. The R1/R2 ratio series is produced by `repro fig8h`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_core::minimal::minimal;
use gpv_core::minimum::minimum;
use gpv_core::view::ViewSet;
use gpv_generator::{
    covering_views, label_pair_views, random_pattern, PatternShape, DEFAULT_ALPHABET,
};

fn bench(c: &mut Criterion) {
    let q = random_pattern(10, 20, &DEFAULT_ALPHABET, PatternShape::Cyclic, 3);
    let qs = [q.clone()];
    let mut views = label_pair_views(&qs).views().to_vec();
    views.extend(covering_views(&qs, 3, 9).views().iter().cloned());
    views.extend(covering_views(&qs, 10, 11).views().iter().cloned());
    let views = ViewSet::new(views);

    let mut g = c.benchmark_group("fig8h");
    g.bench_function("minimal(10,20)", |b| {
        b.iter(|| std::hint::black_box(minimal(&q, &views)))
    });
    g.bench_function("minimum(10,20)", |b| {
        b.iter(|| std::hint::black_box(minimum(&q, &views)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
