//! Criterion bench for Fig. 8(d): scalability with |G| on synthetic graphs
//! (|E| = 2|V|, Q = (4,6)). Two graph sizes bound the paper's sweep; the
//! full series is produced by `repro fig8d`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{plain, Dataset};
use gpv_core::matchjoin::{match_join_with, JoinStrategy};
use gpv_core::minimum::minimum;
use gpv_matching::simulation::match_pattern;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8d");
    g.sample_size(15);
    for n in [6_000usize, 20_000] {
        let s = plain(Dataset::Synthetic, n, (4, 6), 42);
        let sel = minimum(&s.query, &s.views).expect("contained");
        g.bench_function(format!("Match/|V|={n}"), |b| {
            b.iter(|| std::hint::black_box(match_pattern(&s.query, &s.g)))
        });
        g.bench_function(format!("MatchJoin_min/|V|={n}"), |b| {
            b.iter(|| {
                std::hint::black_box(
                    match_join_with(&s.query, &sel.plan, &s.ext, JoinStrategy::RankedBottomUp)
                        .unwrap(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
