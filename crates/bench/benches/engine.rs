//! Criterion bench for the `QueryEngine` layer: sequential vs parallel
//! `MatchJoin` on a fig8(d)-style synthetic workload, plus the full
//! plan-and-execute path. The x-axis sweep and the machine-readable record
//! (`BENCH_engine.json`) are produced by `repro engine`.
//!
//! On a single-core host the parallel executor degrades to inline execution
//! (by design), so the `par*` series tie `seq` there; spare cores are where
//! they separate.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{plain, Dataset};
use gpv_core::engine::{EngineConfig, QueryEngine};
use gpv_core::matchjoin::JoinStrategy;
use gpv_core::minimum::minimum;
use gpv_core::par_match_join;
use gpv_core::plan::{ExecStrategy, SelectionMode};

fn bench(c: &mut Criterion) {
    let s = plain(Dataset::Synthetic, 40_000, (4, 6), 42);
    let sel = minimum(&s.query, &s.views).expect("contained");
    let engine = QueryEngine::materialize(s.views.clone(), &s.g).with_config(EngineConfig {
        force_selection: Some(SelectionMode::Minimum),
        force_exec: Some(ExecStrategy::Sequential(JoinStrategy::RankedBottomUp)),
        ..EngineConfig::default()
    });
    let plan = engine.plan(&s.query);
    assert!(!plan.needs_graph(), "covering views contain the query");

    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    g.bench_function("MatchJoin_seq", |b| {
        b.iter(|| std::hint::black_box(engine.execute(&s.query, &plan, None).unwrap()))
    });
    g.bench_function("MatchJoin_par_auto", |b| {
        b.iter(|| std::hint::black_box(par_match_join(&s.query, &sel.plan, &s.ext, 0).unwrap()))
    });
    g.bench_function("MatchJoin_par2", |b| {
        b.iter(|| std::hint::black_box(par_match_join(&s.query, &sel.plan, &s.ext, 2).unwrap()))
    });
    g.bench_function("MatchJoin_par4", |b| {
        b.iter(|| std::hint::black_box(par_match_join(&s.query, &sel.plan, &s.ext, 4).unwrap()))
    });
    // Intra-edge (chunked) granularity at 4 workers: (edge, chunk) work
    // units instead of one unit per edge — the series that separates from
    // `par4` when cores outnumber the query's edges.
    g.bench_function("MatchJoin_par4_chunked", |b| {
        use gpv_core::{par_match_join_granular, ParGranularity};
        let max_edge = sel
            .plan
            .lambda
            .iter()
            .filter_map(|entries| {
                entries
                    .iter()
                    .map(|r| s.ext.edge_set(r.view, r.edge).len())
                    .min()
            })
            .max()
            .unwrap_or(1);
        let granularity = ParGranularity::Chunked {
            chunk_pairs: (max_edge / 4).max(1),
        };
        b.iter(|| {
            std::hint::black_box(
                par_match_join_granular(&s.query, &sel.plan, &s.ext, 4, granularity).unwrap(),
            )
        })
    });
    g.bench_function("plan_and_execute", |b| {
        b.iter(|| {
            let plan = engine.plan(&s.query);
            std::hint::black_box(engine.execute(&s.query, &plan, None).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
