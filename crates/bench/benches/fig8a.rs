//! Criterion bench for the paper's Fig. 8(a): Match vs MatchJoin
//! (minimal / minimum view selections) on the Amazon emulator.
//! The full |Qs| sweep is produced by `repro fig8a`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpv_bench::experiments::setup::{plain, Dataset};
use gpv_core::matchjoin::{match_join_with, JoinStrategy};
use gpv_core::minimal::minimal;
use gpv_core::minimum::minimum;
use gpv_matching::simulation::match_pattern;

fn bench(c: &mut Criterion) {
    let s = plain(Dataset::Amazon, 11_000, (6, 9), 42);
    let sel_mnl = minimal(&s.query, &s.views).expect("contained");
    let sel_min = minimum(&s.query, &s.views).expect("contained");

    let mut g = c.benchmark_group("fig8a");
    g.sample_size(20);
    g.bench_function("Match", |b| {
        b.iter(|| std::hint::black_box(match_pattern(&s.query, &s.g)))
    });
    g.bench_function("MatchJoin_mnl", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_with(
                    &s.query,
                    &sel_mnl.plan,
                    &s.ext,
                    JoinStrategy::RankedBottomUp,
                )
                .unwrap(),
            )
        })
    });
    g.bench_function("MatchJoin_min", |b| {
        b.iter(|| {
            std::hint::black_box(
                match_join_with(
                    &s.query,
                    &sel_min.plan,
                    &s.ext,
                    JoinStrategy::RankedBottomUp,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
