//! Experiment definitions: one function per figure of the paper.

use gpv_core::bcontainment::{bcontain, bminimal, bminimum};
use gpv_core::bmatchjoin::bmatch_join_with;
use gpv_core::bview::{bmaterialize, BoundedViewSet};
use gpv_core::containment::contain;
use gpv_core::engine::{EngineConfig, QueryEngine};
use gpv_core::matchjoin::{match_join_with, JoinStrategy};
use gpv_core::minimal::{minimal, Selection};
use gpv_core::minimum::minimum;
use gpv_core::plan::{ExecStrategy, SelectionMode};
use gpv_core::view::{materialize, ViewSet};
use gpv_generator::{
    amazon, amazon_predicate_pool, citation, citation_predicate_pool, covering_bounded_views,
    covering_views, densification_graph, random_graph, random_pattern, random_pattern_with_preds,
    uniform_bounded_pattern, uniform_bounded_pattern_with_preds, youtube, youtube_predicate_pool,
    ExecKnob, GraphSource, PatternShape, QueryMode, Scenario, WeightsKnob, DEFAULT_ALPHABET,
};
use gpv_graph::DataGraph;
use gpv_matching::bounded::bmatch_pattern;
use gpv_matching::simulation::match_pattern;
use gpv_pattern::{BoundedPattern, Pattern};
use serde::Serialize;
use std::time::Instant;

/// Scale factor applied to the paper's graph sizes (1.0 = paper scale).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Scale(pub f64);

impl Scale {
    /// Default laptop-friendly scale.
    pub fn default_scale() -> Self {
        Scale(0.02)
    }

    /// Scales a paper-sized node count, keeping at least 1 000 nodes.
    pub fn nodes(&self, paper_n: usize) -> usize {
        ((paper_n as f64) * self.0).round().max(1_000.0) as usize
    }
}

/// One x-axis point of a figure: the x label plus `(series name, value)`
/// measurements. Values are seconds unless the experiment says otherwise.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// X-axis label, e.g. `"(4,6)"` or `"0.3M"`.
    pub x: String,
    /// `(series, value)` pairs, e.g. `("Match", 1.9)`.
    pub series: Vec<(String, f64)>,
    /// One-line [`Scenario`] JSON describing this
    /// row's workload knobs, attached to the performance-tracking
    /// experiments (`engine`, `service`). The same schema `gpv fuzz
    /// --repro` consumes, so a recorded BENCH row can be replayed as a
    /// differential check of its configuration class. `None` on the
    /// paper-figure reproductions.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub scenario: Option<String>,
}

/// Host metadata attached to the performance-tracking experiments
/// (`engine`, `service`), so a recorded `BENCH_*.json` is self-describing:
/// parallel-series numbers from a 1-core container cannot be misread as a
/// scaling result when the row says `cores: 1` next to them.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct HostInfo {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub cores: usize,
    /// What `gpv_core::auto_threads()` resolves to (the executor's default
    /// worker count — cached `available_parallelism`).
    pub auto_threads: usize,
}

impl HostInfo {
    /// Probes the current host.
    pub fn probe() -> Self {
        HostInfo {
            cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
            auto_threads: gpv_core::parallel::auto_threads(),
        }
    }
}

/// A complete experiment result.
#[derive(Clone, Debug, Serialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `"fig8a"`.
    pub id: String,
    /// Human title as in the paper.
    pub title: String,
    /// Unit of the values (`"s"`, `"ms"`, `"ratio"`, ...).
    pub unit: String,
    /// Host metadata for performance-tracking experiments (`None` for the
    /// paper-figure reproductions, whose series are ratios/contrasts that
    /// do not depend on core count).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub host: Option<HostInfo>,
    /// The measured rows.
    pub rows: Vec<Row>,
}

fn secs(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// The [`Scenario`] descriptor attached to performance-tracking rows: the
/// row's synthetic workload knobs in the same one-line JSON schema `gpv
/// fuzz --repro` consumes. It pins the workload class — graph scale, query
/// sizes, view coverage, cache/shard settings — with the mode/executor
/// knobs set to the configuration the experiment forces as its baseline;
/// series that sweep executors on top of that baseline say so in their
/// names.
fn row_scenario(
    nodes: usize,
    queries: usize,
    batch_len: usize,
    rounds: usize,
    mode: QueryMode,
    shards: usize,
    seed: u64,
) -> String {
    Scenario {
        seed,
        graph: GraphSource::Synthetic {
            nodes,
            edges: 2 * nodes,
            labels: DEFAULT_ALPHABET.len(),
        },
        queries,
        query_nodes: 4,
        query_edges: 6,
        shape: PatternShape::Any,
        max_bound: 1,
        zipf_s: 0.0,
        batch_len,
        rounds,
        updates_per_round: 0,
        delta_batch_len: 0,
        delete_ratio: 0.0,
        coverage: 1.0,
        max_fragment: 3,
        mode,
        exec: ExecKnob::Sequential,
        threads: 1,
        chunk_pairs: 0,
        weights: WeightsKnob::Default,
        recalibrate_every: 0,
        result_cache_bytes: 64 << 20,
        plan_cache_capacity: 4096,
        shards,
    }
    .to_json_line()
}

/// A *selective* view set for the matching experiments: medium fragments
/// (2-3 edges, structurally selective like the paper's curated views) plus
/// large fragments that `minimum` can exploit. Single-edge views are
/// deliberately excluded here — their extensions are nearly all label-pair
/// edges of `G`, which would inflate `|V(G)|` toward `|G|` and defeat the
/// point of view-based matching.
fn selective_views(queries: &[Pattern], seed: u64) -> ViewSet {
    let mut views = covering_views(queries, 3, seed).views().to_vec();
    let max_ne = queries.iter().map(Pattern::edge_count).max().unwrap_or(1);
    views.extend(
        covering_views(queries, max_ne.max(4), seed ^ 0xabcd)
            .views()
            .iter()
            .cloned(),
    );
    let mut seen: Vec<Pattern> = Vec::new();
    let mut out = Vec::new();
    for (i, v) in views.into_iter().enumerate() {
        if !seen.contains(&v.pattern) {
            seen.push(v.pattern.clone());
            out.push(gpv_core::view::ViewDef::new(
                format!("V{}", i + 1),
                v.pattern,
            ));
        }
    }
    ViewSet::new(out)
}

/// A view set with deliberate size diversity, mirroring the paper's curated
/// sets: single-edge views first (cheap, numerous), then medium fragments,
/// then large fragments covering most of a query. `minimal`'s in-order scan
/// picks up many small views, while `minimum` can grab the large ones —
/// which is exactly the contrast Fig. 8(h) measures.
fn mixed_views(queries: &[Pattern], seed: u64) -> ViewSet {
    let mut views = gpv_generator::label_pair_views(queries).views().to_vec();
    views.extend(covering_views(queries, 3, seed).views().iter().cloned());
    let max_ne = queries.iter().map(Pattern::edge_count).max().unwrap_or(1);
    views.extend(
        covering_views(queries, max_ne.max(4), seed ^ 0xabcd)
            .views()
            .iter()
            .cloned(),
    );
    // Dedup identical patterns, keeping first occurrence (small first).
    let mut seen: Vec<Pattern> = Vec::new();
    let mut out = Vec::new();
    for (i, v) in views.into_iter().enumerate() {
        if !seen.contains(&v.pattern) {
            seen.push(v.pattern.clone());
            out.push(gpv_core::view::ViewDef::new(
                format!("V{}", i + 1),
                v.pattern,
            ));
        }
    }
    ViewSet::new(out)
}

/// Bounded analogue of [`mixed_views`].
fn mixed_bounded_views(queries: &[BoundedPattern], seed: u64) -> BoundedViewSet {
    let mut views = covering_bounded_views(queries, 2, seed).views().to_vec();
    views.extend(
        covering_bounded_views(queries, 3, seed ^ 0x1111)
            .views()
            .iter()
            .cloned(),
    );
    let max_ne = queries
        .iter()
        .map(|q| q.pattern().edge_count())
        .max()
        .unwrap_or(1);
    views.extend(
        covering_bounded_views(queries, max_ne.max(4), seed ^ 0xabcd)
            .views()
            .iter()
            .cloned(),
    );
    let mut seen: Vec<BoundedPattern> = Vec::new();
    let mut out = Vec::new();
    for (i, v) in views.into_iter().enumerate() {
        if !seen.contains(&v.pattern) {
            seen.push(v.pattern.clone());
            out.push(gpv_core::bview::BoundedViewDef::new(
                format!("V{}", i + 1),
                v.pattern,
            ));
        }
    }
    BoundedViewSet::new(out)
}

/// Builds per-size query sets: `count` patterns of each `(nv, ne)` size.
fn query_set(
    sizes: &[(usize, usize)],
    count: usize,
    shape: PatternShape,
    seed: u64,
) -> Vec<Vec<Pattern>> {
    sizes
        .iter()
        .enumerate()
        .map(|(si, &(nv, ne))| {
            (0..count)
                .map(|i| {
                    random_pattern(
                        nv,
                        ne,
                        &DEFAULT_ALPHABET,
                        shape,
                        seed + (si * count + i) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

/// Predicate-pattern queries over a dataset's schema (the paper's real-life
/// workloads carry Fig. 7-style search conditions, which is what keeps view
/// extensions small relative to `G`).
fn dataset_queries(
    pool: &[gpv_pattern::Predicate],
    sizes: &[(usize, usize)],
    count: usize,
    seed: u64,
) -> Vec<Vec<Pattern>> {
    sizes
        .iter()
        .enumerate()
        .map(|(si, &(nv, ne))| {
            (0..count)
                .map(|i| {
                    random_pattern_with_preds(
                        nv,
                        ne,
                        pool,
                        PatternShape::Any,
                        seed + (si * count + i) as u64,
                    )
                })
                .collect()
        })
        .collect()
}

/// An [`EngineConfig`] pinning the figure's selection mode and the
/// sequential ranked executor, so the fig8 series measure exactly the
/// paper's comparison on any machine (planner auto-tuning is benched
/// separately by [`engine_experiment`]).
fn figure_config(selection: SelectionMode) -> EngineConfig {
    EngineConfig {
        force_selection: Some(selection),
        force_exec: Some(ExecStrategy::Sequential(JoinStrategy::RankedBottomUp)),
        ..EngineConfig::default()
    }
}

/// The common Fig. 8(a)–(c) runner: Match vs MatchJoin_mnl vs MatchJoin_min
/// over one dataset, varying |Qs|. The view paths go through the
/// [`QueryEngine`]: planning (containment + selection) stays untimed, as in
/// the paper's setup where views are pre-selected; the timed section is
/// plan execution only.
fn run_plain_dataset(
    id: &str,
    title: &str,
    g: DataGraph,
    sizes: &[(usize, usize)],
    queries: Vec<Vec<Pattern>>,
    seed: u64,
) -> ExperimentResult {
    // The cached view set covers the whole workload (the paper pre-defines
    // 12 views per dataset known to answer its queries).
    let all: Vec<Pattern> = queries.iter().flatten().cloned().collect();
    let views = selective_views(&all, seed);
    let mut engine = QueryEngine::materialize(views, &g);

    let mut rows = Vec::new();
    for (si, qs) in queries.iter().enumerate() {
        let (mut t_match, mut t_mnl, mut t_min) = (0.0, 0.0, 0.0);
        for q in qs {
            t_match += secs(|| {
                std::hint::black_box(match_pattern(q, &g));
            });
            engine.set_config(figure_config(SelectionMode::Minimal));
            let plan_mnl = engine.plan(q);
            assert!(!plan_mnl.needs_graph(), "covering views contain q");
            t_mnl += secs(|| {
                std::hint::black_box(engine.execute(q, &plan_mnl, None).unwrap());
            });
            engine.set_config(figure_config(SelectionMode::Minimum));
            let plan_min = engine.plan(q);
            t_min += secs(|| {
                std::hint::black_box(engine.execute(q, &plan_min, None).unwrap());
            });
        }
        let n = qs.len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("({},{})", sizes[si].0, sizes[si].1),
            series: vec![
                ("Match".into(), t_match / n),
                ("MatchJoin_mnl".into(), t_mnl / n),
                ("MatchJoin_min".into(), t_min / n),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: id.into(),
        title: title.into(),
        unit: "s".into(),
        rows,
    }
}

/// Fig. 8(a): varying |Qs| on Amazon.
pub fn fig8a(scale: Scale, seed: u64) -> ExperimentResult {
    let g = amazon(scale.nodes(548_000), seed);
    let sizes = [
        (4, 4),
        (4, 6),
        (4, 8),
        (6, 6),
        (6, 9),
        (6, 12),
        (8, 8),
        (8, 12),
        (8, 16),
    ];
    let queries = dataset_queries(&amazon_predicate_pool(), &sizes, 3, seed);
    run_plain_dataset("fig8a", "Varying |Qs| (Amazon)", g, &sizes, queries, seed)
}

/// Fig. 8(b): varying |Qs| on Citation.
pub fn fig8b(scale: Scale, seed: u64) -> ExperimentResult {
    let g = citation(scale.nodes(1_400_000), seed);
    let sizes = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)];
    let queries = dataset_queries(&citation_predicate_pool(), &sizes, 3, seed);
    run_plain_dataset("fig8b", "Varying |Qs| (Citation)", g, &sizes, queries, seed)
}

/// Fig. 8(c): varying |Qs| on YouTube.
pub fn fig8c(scale: Scale, seed: u64) -> ExperimentResult {
    let g = youtube(scale.nodes(1_600_000), seed);
    let sizes = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)];
    let queries = dataset_queries(&youtube_predicate_pool(), &sizes, 3, seed);
    run_plain_dataset("fig8c", "Varying |Qs| (YouTube)", g, &sizes, queries, seed)
}

/// Fig. 8(d): varying |G| on synthetic graphs, |E| = 2|V|, Q = (4,6).
pub fn fig8d(scale: Scale, seed: u64) -> ExperimentResult {
    let queries: Vec<Pattern> = (0..3)
        .map(|i| random_pattern(4, 6, &DEFAULT_ALPHABET, PatternShape::Any, seed + i))
        .collect();
    let views = selective_views(&queries, seed);

    let mut rows = Vec::new();
    for step in 0..8 {
        let paper_n = 300_000 + step * 100_000;
        let n = scale.nodes(paper_n);
        let g = random_graph(n, 2 * n, &DEFAULT_ALPHABET, seed + step as u64);
        let mut engine = QueryEngine::materialize(views.clone(), &g);
        let (mut t_match, mut t_mnl, mut t_min) = (0.0, 0.0, 0.0);
        for q in &queries {
            t_match += secs(|| {
                std::hint::black_box(match_pattern(q, &g));
            });
            engine.set_config(figure_config(SelectionMode::Minimal));
            let plan = engine.plan(q);
            assert!(!plan.needs_graph(), "covering views contain q");
            t_mnl += secs(|| {
                std::hint::black_box(engine.execute(q, &plan, None).unwrap());
            });
            engine.set_config(figure_config(SelectionMode::Minimum));
            let plan = engine.plan(q);
            t_min += secs(|| {
                std::hint::black_box(engine.execute(q, &plan, None).unwrap());
            });
        }
        let c = queries.len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("{:.1}M", paper_n as f64 / 1e6),
            series: vec![
                ("Match".into(), t_match / c),
                ("MatchJoin_mnl".into(), t_mnl / c),
                ("MatchJoin_min".into(), t_min / c),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8d".into(),
        title: "Varying |G| (synthetic)".into(),
        unit: "s".into(),
        rows,
    }
}

/// Fig. 8(e): varying |G| and |Qs| — MatchJoin_min for Q1..Q4 of sizes
/// (4,8)..(7,14).
pub fn fig8e(scale: Scale, seed: u64) -> ExperimentResult {
    let sizes = [(4, 8), (5, 10), (6, 12), (7, 14)];
    let queries: Vec<Pattern> = sizes
        .iter()
        .enumerate()
        .map(|(i, &(nv, ne))| {
            random_pattern(
                nv,
                ne,
                &DEFAULT_ALPHABET,
                PatternShape::Any,
                seed + i as u64,
            )
        })
        .collect();
    let views = covering_views(&queries, 3, seed);

    let mut rows = Vec::new();
    for step in 0..8 {
        let paper_n = 300_000 + step * 100_000;
        let n = scale.nodes(paper_n);
        let g = random_graph(n, 2 * n, &DEFAULT_ALPHABET, seed + step as u64);
        let ext = materialize(&views, &g);
        let mut series = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            let sel = minimum(q, &views).unwrap();
            let t = secs(|| {
                std::hint::black_box(
                    match_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
            series.push((format!("MatchJoin_min[Q{}]", i + 1), t));
        }
        rows.push(Row {
            scenario: None,
            x: format!("{:.1}M", paper_n as f64 / 1e6),
            series,
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8e".into(),
        title: "Varying |G| and |Qs| (synthetic)".into(),
        unit: "s".into(),
        rows,
    }
}

/// Fig. 8(f): optimization effectiveness — MatchJoin_nopt vs MatchJoin_min
/// on densification-law graphs, |V| = 200K (scaled), α ∈ [1, 1.25].
pub fn fig8f(scale: Scale, seed: u64) -> ExperimentResult {
    use gpv_core::matchjoin::match_join_union_with;
    let queries: Vec<Pattern> = (0..3)
        .map(|i| random_pattern(4, 6, &DEFAULT_ALPHABET, PatternShape::Cyclic, seed + i))
        .collect();
    // Mixed views (including coarse single-edge ones): the union merge then
    // hands the fixpoint substantial pruning work, which is what the
    // bottom-up strategy is for.
    let views = mixed_views(&queries, seed);
    // Keep a meaningful density: the optimization pays off when the merged
    // sets leave real pruning work, which needs graphs beyond toy size.
    let n = scale.nodes(200_000).max(50_000);

    let mut rows = Vec::new();
    for step in 0..6 {
        let alpha = 1.0 + 0.05 * step as f64;
        let g = densification_graph(n, alpha, &DEFAULT_ALPHABET, seed + step as u64);
        let ext = materialize(&views, &g);
        let (mut t_nopt, mut t_min) = (0.0, 0.0);
        for q in &queries {
            let sel = minimum(q, &views).unwrap();
            // Both arms start from the literal Fig. 2 union merge, so the
            // measured contrast is purely the worklist strategy.
            t_nopt += secs(|| {
                std::hint::black_box(
                    match_join_union_with(q, &sel.plan, &ext, JoinStrategy::NaiveFixpoint).unwrap(),
                );
            });
            t_min += secs(|| {
                std::hint::black_box(
                    match_join_union_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp)
                        .unwrap(),
                );
            });
        }
        let c = queries.len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("{alpha:.2}"),
            series: vec![
                ("MatchJoin_nopt".into(), t_nopt / c),
                ("MatchJoin_min".into(), t_min / c),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8f".into(),
        title: "Optimization: varying α (synthetic)".into(),
        unit: "s".into(),
        rows,
    }
}

/// Builds the synthetic 22-view set used by the containment experiments.
fn synthetic_views_for_containment(seed: u64) -> ViewSet {
    let pool: Vec<Pattern> = (0..8)
        .map(|i| random_pattern(5, 8, &DEFAULT_ALPHABET, PatternShape::Any, seed + 100 + i))
        .collect();
    covering_views(&pool, 3, seed)
}

/// Fig. 8(g): efficiency of `contain` on DAG vs cyclic patterns.
pub fn fig8g(_scale: Scale, seed: u64) -> ExperimentResult {
    let views = synthetic_views_for_containment(seed);
    let sizes = [
        (6, 6),
        (6, 12),
        (7, 7),
        (7, 14),
        (8, 8),
        (8, 16),
        (9, 9),
        (9, 18),
        (10, 10),
        (10, 20),
    ];
    let dag = query_set(&sizes, 5, PatternShape::Dag, seed);
    let cyc = query_set(&sizes, 5, PatternShape::Cyclic, seed + 1000);

    let mut rows = Vec::new();
    for (si, &(nv, ne)) in sizes.iter().enumerate() {
        let t_dag = secs(|| {
            for q in &dag[si] {
                std::hint::black_box(contain(q, &views));
            }
        }) / dag[si].len() as f64;
        let t_cyc = secs(|| {
            for q in &cyc[si] {
                std::hint::black_box(contain(q, &views));
            }
        }) / cyc[si].len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("({nv},{ne})"),
            series: vec![
                ("QDAG".into(), t_dag * 1e3),
                ("QCyclic".into(), t_cyc * 1e3),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8g".into(),
        title: "contain efficiency: DAG vs cyclic patterns".into(),
        unit: "ms".into(),
        rows,
    }
}

/// Fig. 8(h): `minimum` vs `minimal` — R1 (time ratio) and R2 (selected
/// set-size ratio) on cyclic patterns.
pub fn fig8h(_scale: Scale, seed: u64) -> ExperimentResult {
    let views = synthetic_views_for_containment(seed);
    let sizes = [
        (6, 6),
        (6, 12),
        (7, 7),
        (7, 14),
        (8, 8),
        (8, 16),
        (9, 9),
        (9, 18),
        (10, 10),
        (10, 20),
    ];
    let mut rows = Vec::new();
    for &(nv, ne) in &sizes {
        // Queries drawn from view compositions so containment holds and the
        // selection problem is nontrivial.
        let qs: Vec<Pattern> = (0..5)
            .map(|i| {
                random_pattern(
                    nv,
                    ne,
                    &DEFAULT_ALPHABET,
                    PatternShape::Cyclic,
                    seed + (nv * 31 + ne * 7 + i) as u64,
                )
            })
            .collect();
        let all_views = {
            // Workload views (small first, large later) + the fixed
            // synthetic set (paper: same fixed set V across sizes).
            let mut vs = mixed_views(&qs, seed).views().to_vec();
            vs.extend(views.views().iter().cloned());
            ViewSet::new(vs)
        };
        let (mut t_mnl, mut t_min) = (0.0, 0.0);
        let (mut s_mnl, mut s_min) = (0usize, 0usize);
        for q in &qs {
            let mut sel: Option<Selection> = None;
            t_mnl += secs(|| {
                sel = minimal(q, &all_views);
            });
            s_mnl += sel.as_ref().map(|s| s.views.len()).unwrap_or(0);
            let mut sel2: Option<Selection> = None;
            t_min += secs(|| {
                sel2 = minimum(q, &all_views);
            });
            s_min += sel2.as_ref().map(|s| s.views.len()).unwrap_or(0);
        }
        rows.push(Row {
            scenario: None,
            x: format!("({nv},{ne})"),
            series: vec![
                (
                    "R1 (Tmin/Tmnl)".into(),
                    if t_mnl > 0.0 { t_min / t_mnl } else { 0.0 },
                ),
                (
                    "R2 (|Minimum|/|Minimal|)".into(),
                    if s_mnl > 0 {
                        s_min as f64 / s_mnl as f64
                    } else {
                        0.0
                    },
                ),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8h".into(),
        title: "minimum vs minimal (cyclic patterns)".into(),
        unit: "ratio".into(),
        rows,
    }
}

/// The common bounded runner: BMatch vs BMatchJoin_mnl vs BMatchJoin_min.
fn run_bounded_dataset(
    id: &str,
    title: &str,
    g: DataGraph,
    pool: &[gpv_pattern::Predicate],
    sizes: &[(usize, usize)],
    k: u32,
    seed: u64,
) -> ExperimentResult {
    let queries: Vec<Vec<BoundedPattern>> = sizes
        .iter()
        .enumerate()
        .map(|(si, &(nv, ne))| {
            (0..2)
                .map(|i| {
                    uniform_bounded_pattern_with_preds(
                        nv,
                        ne,
                        pool,
                        k,
                        PatternShape::Any,
                        seed + (si * 2 + i) as u64,
                    )
                })
                .collect()
        })
        .collect();
    let all: Vec<BoundedPattern> = queries.iter().flatten().cloned().collect();
    let views = mixed_bounded_views(&all, seed);
    let ext = bmaterialize(&views, &g);

    let mut rows = Vec::new();
    for (si, qs) in queries.iter().enumerate() {
        let (mut t_bmatch, mut t_mnl, mut t_min) = (0.0, 0.0, 0.0);
        for q in qs {
            t_bmatch += secs(|| {
                std::hint::black_box(bmatch_pattern(q, &g));
            });
            let sel = bminimal(q, &views).expect("covering views contain q");
            t_mnl += secs(|| {
                std::hint::black_box(
                    bmatch_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
            let sel = bminimum(q, &views).expect("covering views contain q");
            t_min += secs(|| {
                std::hint::black_box(
                    bmatch_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
        }
        let n = qs.len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("({},{},{k})", sizes[si].0, sizes[si].1),
            series: vec![
                ("BMatch".into(), t_bmatch / n),
                ("BMatchJoin_mnl".into(), t_mnl / n),
                ("BMatchJoin_min".into(), t_min / n),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: id.into(),
        title: title.into(),
        unit: "s".into(),
        rows,
    }
}

/// Fig. 8(i): bounded patterns on Amazon, fe(e) = 2.
pub fn fig8i(scale: Scale, seed: u64) -> ExperimentResult {
    let g = amazon(scale.nodes(548_000), seed);
    let sizes = [
        (4, 4),
        (4, 6),
        (4, 8),
        (6, 6),
        (6, 9),
        (6, 12),
        (8, 8),
        (8, 12),
        (8, 16),
    ];
    run_bounded_dataset(
        "fig8i",
        "Varying |Qb| (Amazon, fe=2)",
        g,
        &amazon_predicate_pool(),
        &sizes,
        2,
        seed,
    )
}

/// Fig. 8(j): bounded patterns on Citation, fe(e) = 3.
pub fn fig8j(scale: Scale, seed: u64) -> ExperimentResult {
    let g = citation(scale.nodes(1_400_000), seed);
    let sizes = [(4, 8), (5, 10), (6, 12), (7, 14), (8, 16)];
    run_bounded_dataset(
        "fig8j",
        "Varying |Qb| (Citation, fe=3)",
        g,
        &citation_predicate_pool(),
        &sizes,
        3,
        seed,
    )
}

/// Fig. 8(k): varying fe(e) from 2 to 6 on YouTube, Q = (4, 8).
pub fn fig8k(scale: Scale, seed: u64) -> ExperimentResult {
    let g = youtube(scale.nodes(1_600_000), seed);
    let pool = youtube_predicate_pool();

    let mut rows = Vec::new();
    for k in 2..=6u32 {
        let queries: Vec<BoundedPattern> = (0..2)
            .map(|i| {
                uniform_bounded_pattern_with_preds(4, 8, &pool, k, PatternShape::Any, seed + i)
            })
            .collect();
        let views = mixed_bounded_views(&queries, seed + k as u64);
        let ext = bmaterialize(&views, &g);
        let (mut t_bmatch, mut t_mnl, mut t_min) = (0.0, 0.0, 0.0);
        for q in &queries {
            t_bmatch += secs(|| {
                std::hint::black_box(bmatch_pattern(q, &g));
            });
            let sel = bminimal(q, &views).unwrap();
            t_mnl += secs(|| {
                std::hint::black_box(
                    bmatch_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
            let sel = bminimum(q, &views).unwrap();
            t_min += secs(|| {
                std::hint::black_box(
                    bmatch_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
        }
        let n = queries.len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("{k}"),
            series: vec![
                ("BMatch".into(), t_bmatch / n),
                ("BMatchJoin_mnl".into(), t_mnl / n),
                ("BMatchJoin_min".into(), t_min / n),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8k".into(),
        title: "Varying fe(e) (YouTube)".into(),
        unit: "s".into(),
        rows,
    }
}

/// Fig. 8(l): bounded scalability on synthetic graphs — Q = (4,6), fe = 3,
/// |V| 0.3M → 1M (scaled), |E| = 2|V|.
pub fn fig8l(scale: Scale, seed: u64) -> ExperimentResult {
    let queries: Vec<BoundedPattern> = (0..2)
        .map(|i| uniform_bounded_pattern(4, 6, &DEFAULT_ALPHABET, 3, PatternShape::Any, seed + i))
        .collect();
    let views = mixed_bounded_views(&queries, seed);

    let mut rows = Vec::new();
    for step in 0..8 {
        let paper_n = 300_000 + step * 100_000;
        let n = scale.nodes(paper_n);
        let g = random_graph(n, 2 * n, &DEFAULT_ALPHABET, seed + step as u64);
        let ext = bmaterialize(&views, &g);
        let (mut t_bmatch, mut t_mnl, mut t_min) = (0.0, 0.0, 0.0);
        for q in &queries {
            t_bmatch += secs(|| {
                std::hint::black_box(bmatch_pattern(q, &g));
            });
            let sel = bminimal(q, &views).unwrap();
            t_mnl += secs(|| {
                std::hint::black_box(
                    bmatch_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
            let sel = bminimum(q, &views).unwrap();
            t_min += secs(|| {
                std::hint::black_box(
                    bmatch_join_with(q, &sel.plan, &ext, JoinStrategy::RankedBottomUp).unwrap(),
                );
            });
        }
        let c = queries.len() as f64;
        rows.push(Row {
            scenario: None,
            x: format!("{:.1}M", paper_n as f64 / 1e6),
            series: vec![
                ("BMatch".into(), t_bmatch / c),
                ("BMatchJoin_mnl".into(), t_mnl / c),
                ("BMatchJoin_min".into(), t_min / c),
            ],
        });
    }
    ExperimentResult {
        host: None,
        id: "fig8l".into(),
        title: "Bounded scalability: varying |G| (synthetic)".into(),
        unit: "s".into(),
        rows,
    }
}

/// Engine bench: the unified `QueryEngine` on a fig8(d)-style synthetic
/// workload — planner overhead, sequential `MatchJoin`, and the parallel
/// executor at auto / 2 / 4 workers, varying |G|. The parallel series only
/// beat the sequential one when the machine actually has spare cores
/// (`threads=1` degrades to inline execution by design); the point of the
/// experiment is recording that trajectory per host.
///
/// Each row also records the **calibration loop**: the mean relative
/// estimate error (planner prediction vs measured wall µs) under the
/// unit-free default weights, and again after
/// [`CostModel::calibrate`](gpv_core::CostModel::calibrate) re-fits the
/// weights from this row's recorded executions — the `est_err_*` series
/// are dimensionless ratios, and calibration must drive the error down.
///
/// **Granularity series.** `MatchJoin_par4_chunked` times the intra-edge
/// (chunked) executor at 4 workers, and `granularity_chunk_pairs` records
/// the chunk size the cost model would pick at `auto_threads()` for this
/// row's per-edge pair counts (`0` = per-edge granularity; on a 1-core
/// host it is always 0 — the [`HostInfo`] on the result says so).
pub fn engine_experiment(scale: Scale, seed: u64) -> ExperimentResult {
    use gpv_core::{par_match_join, par_match_join_granular, ParGranularity};
    let queries: Vec<Pattern> = (0..3)
        .map(|i| random_pattern(4, 6, &DEFAULT_ALPHABET, PatternShape::Any, seed + i))
        .collect();
    let views = selective_views(&queries, seed);
    let host = HostInfo::probe();

    let mut rows = Vec::new();
    for step in 0..4 {
        let paper_n = 400_000 + step * 400_000;
        let n = scale.nodes(paper_n);
        let g = random_graph(n, 2 * n, &DEFAULT_ALPHABET, seed + step as u64);
        let mut engine = QueryEngine::materialize(views.clone(), &g);
        engine.set_config(figure_config(SelectionMode::Minimum));
        let (mut t_plan, mut t_seq, mut t_auto, mut t_par2, mut t_par4) = (0.0, 0.0, 0.0, 0.0, 0.0);
        let mut t_par4c = 0.0;
        // The granularity the cost model picks for this row's workload at
        // the host's auto thread count (0 = per-edge).
        let mut chunk_chosen = 0.0f64;
        for q in &queries {
            t_plan += secs(|| {
                std::hint::black_box(engine.plan(q));
            });
            let plan = engine.plan(q);
            assert!(!plan.needs_graph(), "covering views contain q");
            t_seq += secs(|| {
                std::hint::black_box(engine.execute(q, &plan, None).unwrap());
            });
            // Two more recorded (untimed) executions per query, so the
            // calibration fit below has a few samples per plan shape.
            for _ in 0..2 {
                std::hint::black_box(engine.execute(q, &plan, None).unwrap());
            }
            let gpv_core::QueryPlan::ViewsOnly(vp) = &plan else {
                unreachable!("checked above");
            };
            let per_edge = engine.per_edge_pairs(&vp.sources);
            if let ParGranularity::Chunked { chunk_pairs } = engine
                .cost_model()
                .parallel_granularity(&per_edge, host.auto_threads)
            {
                chunk_chosen = chunk_chosen.max(chunk_pairs as f64);
            }
            t_auto += secs(|| {
                std::hint::black_box(par_match_join(q, &vp.plan, engine.extensions(), 0).unwrap());
            });
            t_par2 += secs(|| {
                std::hint::black_box(par_match_join(q, &vp.plan, engine.extensions(), 2).unwrap());
            });
            t_par4 += secs(|| {
                std::hint::black_box(par_match_join(q, &vp.plan, engine.extensions(), 4).unwrap());
            });
            // Intra-edge (chunked) executor: the largest per-edge set split
            // four ways (floored at 1 pair so tiny rows still exercise the
            // chunked code path).
            let chunk = (per_edge.iter().copied().max().unwrap_or(1) as usize / 4).max(1);
            t_par4c += secs(|| {
                std::hint::black_box(
                    par_match_join_granular(
                        q,
                        &vp.plan,
                        engine.extensions(),
                        4,
                        ParGranularity::Chunked { chunk_pairs: chunk },
                    )
                    .unwrap(),
                );
            });
        }
        // Feed the log some direct (graph-scan) executions too, via an
        // empty-registry engine sharing the same cost log — the fit then
        // has signal for `scan_edge`, not just the view-path weights.
        let direct_engine = QueryEngine::materialize(ViewSet::default(), &g)
            .with_cost_log(engine.cost_log_handle());
        for q in &queries {
            std::hint::black_box(direct_engine.answer(q, &g).unwrap());
        }
        // The columnar-arena series: read every cached pair the way the
        // join hot path does, through the flat arena vs the boxed
        // `Vec<Vec<(v, v')>>` representation the executors used to run on
        // (thawed back for the comparison), plus the resident bytes of
        // each. The arena read is a bare slice scan — freeze canonicalized
        // (sorted + deduped) every set once, so executors borrow it
        // verbatim. The boxed form carried no such guarantee, so its hot
        // path paid `canonical_pairs` on every read: a defensive copy plus
        // a sortedness check per edge set, per query. That per-read copy
        // is the throughput gap; the per-set `Vec` header and separate
        // allocation are the resident-bytes gap.
        let (t_flat_scan, t_boxed_scan, compact_resident, boxed_resident) = {
            let ext = engine.extensions();
            let boxed: Vec<_> = ext.extensions.iter().map(|v| v.thaw()).collect();
            fn flat_sweep(views: &[std::sync::Arc<gpv_core::CompactView>]) -> u64 {
                let mut acc = 0u64;
                for v in views {
                    for &(a, b) in v.all_pairs() {
                        acc = acc.wrapping_add(a.0 as u64 ^ b.0 as u64);
                    }
                }
                acc
            }
            fn boxed_sweep(results: &[gpv_matching::result::MatchResult]) -> u64 {
                let mut acc = 0u64;
                for r in results {
                    for set in &r.edge_matches {
                        // What `merged_from_sources` paid per read before
                        // the arena: copy, verify sorted, consume.
                        let mut v = set.clone();
                        if !v.windows(2).all(|w| w[0] < w[1]) {
                            v.sort_unstable();
                            v.dedup();
                        }
                        for &(a, b) in &v {
                            acc = acc.wrapping_add(a.0 as u64 ^ b.0 as u64);
                        }
                    }
                }
                acc
            }
            // Per-sweep wall time, minimum over interleaved timed batches
            // of `scan_reps` sweeps each: interleaving flat/boxed batches
            // keeps scheduler jitter and frequency drift on a shared
            // 1-core container from biasing whichever side is measured
            // second, and the min filters the remaining spikes. The data
            // reference is laundered through `black_box` every sweep so
            // the optimizer cannot hoist a pure loop-invariant sweep out
            // of the rep loop (it provably did for the arena side, whose
            // sweep allocates nothing). One untimed warm-up of each
            // first, so neither side pays the cold cache — the boxed
            // copies were just written by `thaw` and would otherwise
            // start warm while the arena starts cold.
            let scan_reps = 200;
            std::hint::black_box(flat_sweep(&ext.extensions) ^ boxed_sweep(&boxed));
            let (mut t_flat_scan, mut t_boxed_scan) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..9 {
                t_flat_scan = t_flat_scan.min(secs(|| {
                    let mut acc = 0u64;
                    for _ in 0..scan_reps {
                        acc = acc.wrapping_add(flat_sweep(std::hint::black_box(&ext.extensions)));
                    }
                    std::hint::black_box(acc);
                }));
                t_boxed_scan = t_boxed_scan.min(secs(|| {
                    let mut acc = 0u64;
                    for _ in 0..scan_reps {
                        acc = acc.wrapping_add(boxed_sweep(std::hint::black_box(&boxed)));
                    }
                    std::hint::black_box(acc);
                }));
            }
            let vec_hdr = std::mem::size_of::<Vec<(u32, u32)>>();
            let boxed_resident: usize = boxed
                .iter()
                .map(|r| {
                    2 * vec_hdr
                        + r.node_matches.len() * vec_hdr
                        + r.node_matches.iter().map(|v| v.len() * 4).sum::<usize>()
                        + r.edge_matches.len() * vec_hdr
                        + r.edge_matches.iter().map(|v| v.len() * 8).sum::<usize>()
                })
                .sum::<usize>();
            (
                t_flat_scan / scan_reps as f64,
                t_boxed_scan / scan_reps as f64,
                ext.resident_bytes(),
                boxed_resident,
            )
        };
        let est_err_default = engine.estimate_error().expect("executions recorded");
        let est_err_calibrated = if engine.apply_calibration() {
            engine.estimate_error().expect("executions recorded")
        } else {
            est_err_default
        };
        let c = queries.len() as f64;
        rows.push(Row {
            scenario: Some(row_scenario(
                n,
                queries.len(),
                queries.len(),
                1,
                QueryMode::Minimum,
                1,
                seed + step as u64,
            )),
            x: format!("{:.1}M", paper_n as f64 / 1e6),
            series: vec![
                ("plan".into(), t_plan / c),
                ("MatchJoin_seq".into(), t_seq / c),
                ("MatchJoin_par_auto".into(), t_auto / c),
                ("MatchJoin_par2".into(), t_par2 / c),
                ("MatchJoin_par4".into(), t_par4 / c),
                ("MatchJoin_par4_chunked".into(), t_par4c / c),
                ("granularity_chunk_pairs".into(), chunk_chosen),
                ("est_err_default".into(), est_err_default),
                ("est_err_calibrated".into(), est_err_calibrated),
                ("compact_scan".into(), t_flat_scan),
                ("boxed_scan".into(), t_boxed_scan),
                ("compact_resident_mb".into(), compact_resident as f64 / 1e6),
                ("boxed_resident_mb".into(), boxed_resident as f64 / 1e6),
            ],
        });
    }
    ExperimentResult {
        host: Some(host),
        id: "engine".into(),
        title: "QueryEngine: planner overhead + sequential vs parallel MatchJoin".into(),
        unit: "s".into(),
        rows,
    }
}

/// Service bench: concurrent batch serving through the
/// [`ViewService`](gpv_core::service::ViewService) facade over a sharded
/// [`ViewStore`](gpv_core::store::ViewStore). For each client count
/// (1/2/4/8), every client thread submits the same duplicated query batch
/// **twice** (two separate batches — the repeat is what exercises the
/// cross-batch result cache; in-batch duplicates only exercise dedup)
/// concurrently against a fresh service; the rows record wall-clock,
/// throughput, and the plan-/result-cache hit and miss counts. On a 1-core
/// host the client threads time-slice one core, so throughput cannot scale
/// with clients — the experiment still exercises (and records) contention
/// on the shared caches and store; see CHANGES.md.
pub fn service_experiment(scale: Scale, seed: u64) -> ExperimentResult {
    use gpv_core::service::ViewService;
    use gpv_core::store::ViewStore;
    use std::sync::Arc;

    let n = scale.nodes(400_000);
    let g = random_graph(n, 2 * n, &DEFAULT_ALPHABET, seed);
    let queries: Vec<Pattern> = (0..6)
        .map(|i| random_pattern(4, 6, &DEFAULT_ALPHABET, PatternShape::Any, seed + i))
        .collect();
    let views = selective_views(&queries, seed);
    let store = Arc::new(ViewStore::materialize(views, &g, 8));
    // Each query appears 4 times per batch: realistic repeated traffic,
    // which is what the plan cache and intra-batch dedup are for.
    let batch: Vec<Pattern> = queries
        .iter()
        .flat_map(|q| std::iter::repeat_n(q, 4))
        .cloned()
        .collect();
    const ROUNDS: usize = 2;

    let mut rows = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        // A fresh service per row: stats and cache state start cold, so
        // rows are comparable.
        let service = ViewService::new(store.clone());
        let wall = secs(|| {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        s.spawn(|| {
                            for _ in 0..ROUNDS {
                                for r in service.serve_batch(&batch, Some(&g)) {
                                    std::hint::black_box(r.expect("batch serves"));
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("client thread panicked");
                }
            });
        });
        let stats = service.stats();
        let served = (clients * ROUNDS * batch.len()) as f64;
        rows.push(Row {
            scenario: Some(row_scenario(
                n,
                queries.len(),
                batch.len(),
                ROUNDS,
                QueryMode::Minimal,
                8,
                seed,
            )),
            x: format!("{clients}"),
            series: vec![
                ("wall_s".into(), wall),
                ("throughput_qps".into(), served / wall.max(1e-9)),
                ("plan_cache_hit_rate".into(), stats.plan_cache_hit_rate),
                ("result_cache_hits".into(), stats.result_cache_hits as f64),
                (
                    "result_cache_misses".into(),
                    stats.result_cache_misses as f64,
                ),
                ("result_cache_hit_rate".into(), stats.result_cache_hit_rate),
                ("dedup_saved".into(), stats.dedup_saved as f64),
                ("max_queue_depth".into(), stats.max_in_flight as f64),
            ],
        });
    }
    ExperimentResult {
        host: Some(HostInfo::probe()),
        id: "service".into(),
        title: "ViewService: concurrent batch serving, varying client threads".into(),
        unit: "mixed".into(),
        rows,
    }
}

/// Maintenance bench: sustained edge-update throughput interleaved with
/// serving. Each row fixes a delta batch size and replays the same
/// scenario twice: the **delta** series routes every update batch through
/// [`ViewService::apply_delta`](gpv_core::service::ViewService::apply_delta)
/// (footprint detection, warm incremental maintainers, selective
/// re-freeze, MVCC publish), while the **rebuild** baseline does what the
/// pre-delta pipeline had to — rematerialize the whole store from the
/// post-delta graph and restart serving on a cold service. The workload
/// (graph, views, serve schedule, delta stream) is a [`Scenario`], and its
/// one-line JSON rides on the row so `gpv fuzz --repro` replays the exact
/// configuration class as a differential check.
pub fn maintenance_experiment(scale: Scale, seed: u64) -> ExperimentResult {
    use gpv_core::service::ViewService;
    use gpv_core::store::ViewStore;
    use gpv_graph::NodeId;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    let n = scale.nodes(200_000);
    // Enough rounds that the one-time warm-up (cold maintainer promotion on
    // the first delta that touches each view) amortizes and the row measures
    // sustained maintenance throughput, not start-up cost.
    const ROUNDS: usize = 12;
    let mut rows = Vec::new();
    // Three mixed rows sweep batch size at a 50/50 insert/delete mix; the
    // final row is delete-only, the truly-incremental case (deletions
    // propagate through warm supports without any recompute).
    for (delta_batch_len, delete_ratio) in [(1usize, 0.5), (8, 0.5), (64, 0.5), (64, 1.0)] {
        let sc = Scenario {
            seed: seed + delta_batch_len as u64,
            graph: GraphSource::Synthetic {
                nodes: n,
                edges: 2 * n,
                labels: DEFAULT_ALPHABET.len(),
            },
            queries: 6,
            query_nodes: 4,
            query_edges: 6,
            shape: PatternShape::Any,
            max_bound: 1,
            zipf_s: 0.0,
            batch_len: 8,
            rounds: ROUNDS,
            updates_per_round: 0,
            delta_batch_len,
            delete_ratio,
            coverage: 1.0,
            max_fragment: 3,
            mode: QueryMode::Minimal,
            exec: ExecKnob::Sequential,
            threads: 1,
            chunk_pairs: 0,
            weights: WeightsKnob::Default,
            recalibrate_every: 0,
            result_cache_bytes: 64 << 20,
            plan_cache_capacity: 4096,
            shards: 8,
        };
        let inputs = sc.materialize();
        let round_batch = |r: usize| -> Vec<Pattern> {
            inputs.rounds[r]
                .iter()
                .map(|&qi| inputs.queries[qi].clone())
                .collect()
        };
        let updates: usize = inputs
            .deltas
            .iter()
            .map(|d| d.inserts.len() + d.deletes.len())
            .sum();

        // Delta series: one long-lived service; every update batch goes
        // through the incremental pipeline, caches survive across rounds.
        let mut refrozen = 0usize;
        let mut delta_update_s = 0.0f64;
        let delta_wall = {
            let store = Arc::new(ViewStore::materialize(
                inputs.views.clone(),
                &inputs.graph,
                sc.shards,
            ));
            let service = ViewService::new(store);
            let mut current = inputs.graph.clone();
            secs(|| {
                for r in 0..ROUNDS {
                    let batch = round_batch(r);
                    for res in service.serve_batch(&batch, Some(&current)) {
                        std::hint::black_box(res.expect("batch serves"));
                    }
                    if let Some(d) = inputs.deltas.get(r).filter(|d| !d.is_empty()) {
                        let t = Instant::now();
                        let rep = service.apply_delta(d, &current).expect("delta applies");
                        delta_update_s += t.elapsed().as_secs_f64();
                        refrozen += rep.changed.len();
                        current = rep.graph;
                    }
                }
            })
        };

        // Rebuild baseline: the same rounds and deltas, but every update
        // batch pays a full store rematerialization from the post-delta
        // graph plus a cold service (no surviving caches) — the only
        // option before the delta pipeline existed.
        let mut rebuild_update_s = 0.0f64;
        let rebuild_wall = {
            let mut current = inputs.graph.clone();
            let mut service = ViewService::new(Arc::new(ViewStore::materialize(
                inputs.views.clone(),
                &current,
                sc.shards,
            )));
            secs(|| {
                for r in 0..ROUNDS {
                    let batch = round_batch(r);
                    for res in service.serve_batch(&batch, Some(&current)) {
                        std::hint::black_box(res.expect("batch serves"));
                    }
                    if let Some(d) = inputs.deltas.get(r).filter(|d| !d.is_empty()) {
                        let t = Instant::now();
                        let mut edges: BTreeSet<(NodeId, NodeId)> = current.edges().collect();
                        for e in &d.deletes {
                            edges.remove(e);
                        }
                        for e in &d.inserts {
                            edges.insert(*e);
                        }
                        let edges: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
                        current = current.with_edges(&edges);
                        service = ViewService::new(Arc::new(ViewStore::materialize(
                            inputs.views.clone(),
                            &current,
                            sc.shards,
                        )));
                        rebuild_update_s += t.elapsed().as_secs_f64();
                    }
                }
            })
        };

        rows.push(Row {
            scenario: Some(sc.to_json_line()),
            x: if delete_ratio >= 1.0 {
                format!("{delta_batch_len}-del")
            } else {
                format!("{delta_batch_len}")
            },
            series: vec![
                ("delta_wall_s".into(), delta_wall),
                ("rebuild_wall_s".into(), rebuild_wall),
                (
                    "delta_updates_per_s".into(),
                    updates as f64 / delta_update_s.max(1e-9),
                ),
                (
                    "rebuild_updates_per_s".into(),
                    updates as f64 / rebuild_update_s.max(1e-9),
                ),
                ("updates_applied".into(), updates as f64),
                ("views_refrozen".into(), refrozen as f64),
                (
                    "maintenance_speedup".into(),
                    rebuild_update_s / delta_update_s.max(1e-9),
                ),
            ],
        });
    }
    ExperimentResult {
        host: Some(HostInfo::probe()),
        id: "maintenance".into(),
        title: "Delta maintenance: incremental apply_delta vs full store rebuild".into(),
        unit: "mixed".into(),
        rows,
    }
}

/// Checks that a bounded workload is contained (used by tests).
pub fn sanity_bounded(qb: &BoundedPattern, views: &BoundedViewSet) -> bool {
    bcontain(qb, views).is_some()
}

/// Prebuilt workloads for the Criterion benches: graph + views +
/// materialized extensions + one representative query, so the timing loops
/// measure only the algorithms under comparison.
pub mod setup {
    use super::*;
    use gpv_core::bview::BoundedViewExtensions;
    use gpv_core::view::ViewExtensions;

    /// Which graph to build.
    #[derive(Clone, Copy, Debug)]
    pub enum Dataset {
        /// Amazon co-purchase emulator.
        Amazon,
        /// Citation DAG emulator.
        Citation,
        /// YouTube recommendation emulator.
        YouTube,
        /// Uniform random graph, |E| = 2|V|.
        Synthetic,
        /// Densification-law graph with the given α.
        Densification(f64),
    }

    fn build_graph(d: Dataset, n: usize, seed: u64) -> DataGraph {
        match d {
            Dataset::Amazon => amazon(n, seed),
            Dataset::Citation => citation(n, seed),
            Dataset::YouTube => youtube(n, seed),
            Dataset::Synthetic => random_graph(n, 2 * n, &DEFAULT_ALPHABET, seed),
            Dataset::Densification(a) => densification_graph(n, a, &DEFAULT_ALPHABET, seed),
        }
    }

    fn pool(d: Dataset) -> Option<Vec<gpv_pattern::Predicate>> {
        match d {
            Dataset::Amazon => Some(amazon_predicate_pool()),
            Dataset::Citation => Some(citation_predicate_pool()),
            Dataset::YouTube => Some(youtube_predicate_pool()),
            _ => None,
        }
    }

    /// A plain-pattern workload.
    pub struct PlainSetup {
        /// The data graph.
        pub g: DataGraph,
        /// The cached view set (contains `query`).
        pub views: ViewSet,
        /// Materialized extensions `V(G)`.
        pub ext: ViewExtensions,
        /// The representative query.
        pub query: Pattern,
    }

    /// Builds a plain workload on `dataset` with one `(nv, ne)` query.
    pub fn plain(dataset: Dataset, n: usize, (nv, ne): (usize, usize), seed: u64) -> PlainSetup {
        let g = build_graph(dataset, n, seed);
        let query = match pool(dataset) {
            Some(p) => random_pattern_with_preds(nv, ne, &p, PatternShape::Any, seed),
            None => random_pattern(nv, ne, &DEFAULT_ALPHABET, PatternShape::Any, seed),
        };
        let views = selective_views(std::slice::from_ref(&query), seed);
        let ext = materialize(&views, &g);
        PlainSetup {
            g,
            views,
            ext,
            query,
        }
    }

    /// A bounded-pattern workload.
    pub struct BoundedSetup {
        /// The data graph.
        pub g: DataGraph,
        /// The cached bounded view set (contains `query`).
        pub views: BoundedViewSet,
        /// Materialized extensions with `I(V)` distances.
        pub ext: BoundedViewExtensions,
        /// The representative query.
        pub query: BoundedPattern,
    }

    /// Builds a bounded workload on `dataset` with a `(nv, ne)` query of
    /// uniform bound `k`.
    pub fn bounded(
        dataset: Dataset,
        n: usize,
        (nv, ne): (usize, usize),
        k: u32,
        seed: u64,
    ) -> BoundedSetup {
        let g = build_graph(dataset, n, seed);
        let query = match pool(dataset) {
            Some(p) => uniform_bounded_pattern_with_preds(nv, ne, &p, k, PatternShape::Any, seed),
            None => uniform_bounded_pattern(nv, ne, &DEFAULT_ALPHABET, k, PatternShape::Any, seed),
        };
        let views = mixed_bounded_views(std::slice::from_ref(&query), seed);
        let ext = bmaterialize(&views, &g);
        BoundedSetup {
            g,
            views,
            ext,
            query,
        }
    }
}

/// Runs every experiment at the given scale.
pub fn run_all(scale: Scale, seed: u64) -> Vec<ExperimentResult> {
    vec![
        fig8a(scale, seed),
        fig8b(scale, seed),
        fig8c(scale, seed),
        fig8d(scale, seed),
        fig8e(scale, seed),
        fig8f(scale, seed),
        fig8g(scale, seed),
        fig8h(scale, seed),
        fig8i(scale, seed),
        fig8j(scale, seed),
        fig8k(scale, seed),
        fig8l(scale, seed),
        engine_experiment(scale, seed),
        service_experiment(scale, seed),
        maintenance_experiment(scale, seed),
    ]
}

/// Runs one experiment by id.
pub fn run_one(id: &str, scale: Scale, seed: u64) -> Option<ExperimentResult> {
    Some(match id {
        "fig8a" => fig8a(scale, seed),
        "fig8b" => fig8b(scale, seed),
        "fig8c" => fig8c(scale, seed),
        "fig8d" => fig8d(scale, seed),
        "fig8e" => fig8e(scale, seed),
        "fig8f" => fig8f(scale, seed),
        "fig8g" => fig8g(scale, seed),
        "fig8h" => fig8h(scale, seed),
        "fig8i" => fig8i(scale, seed),
        "fig8j" => fig8j(scale, seed),
        "fig8k" => fig8k(scale, seed),
        "fig8l" => fig8l(scale, seed),
        "engine" => engine_experiment(scale, seed),
        "service" => service_experiment(scale, seed),
        "maintenance" => maintenance_experiment(scale, seed),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny scale so the suite stays fast in CI.
    fn tiny() -> Scale {
        Scale(0.002)
    }

    #[test]
    fn fig8a_runs_and_views_win_eventually() {
        let r = fig8a(tiny(), 42);
        assert_eq!(r.rows.len(), 9);
        for row in &r.rows {
            assert_eq!(row.series.len(), 3);
            for (_, v) in &row.series {
                assert!(v.is_finite() && *v >= 0.0);
            }
        }
    }

    #[test]
    fn fig8g_has_both_series() {
        let r = fig8g(tiny(), 7);
        assert_eq!(r.rows.len(), 10);
        assert!(r.rows.iter().all(|r| r.series.len() == 2));
    }

    #[test]
    fn fig8h_ratios_sensible() {
        let r = fig8h(tiny(), 7);
        for row in &r.rows {
            let r2 = row.series[1].1;
            assert!(r2 > 0.0 && r2 <= 1.0 + 1e-9, "minimum never larger: {r2}");
        }
    }

    #[test]
    fn engine_calibration_reduces_estimate_error() {
        let r = engine_experiment(tiny(), 42);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            let get = |name: &str| {
                row.series
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            let before = get("est_err_default");
            let after = get("est_err_calibrated");
            assert!(before.is_finite() && after.is_finite());
            // The fit minimizes squared absolute error while the series
            // reports mean *relative* error, so on noisy tiny-scale timings
            // a strict `after <= before` could flake; the real signal —
            // unit-free defaults are orders of magnitude off, measured
            // weights are not — survives a generous slack.
            assert!(
                after <= before * 1.5,
                "calibration must not materially worsen the estimate error \
                 ({after} vs {before})"
            );
        }
    }

    /// The perf-tracking experiments must be self-describing: host core
    /// count + auto thread count on the result, chunked-executor timing and
    /// the chosen granularity in every row — so 1-core container numbers
    /// cannot be misread as scaling results.
    #[test]
    fn perf_experiments_record_host_metadata() {
        let r = engine_experiment(tiny(), 42);
        let host = r.host.expect("engine experiment records host metadata");
        assert!(host.cores >= 1);
        assert!(host.auto_threads >= 1);
        for row in &r.rows {
            for series in ["MatchJoin_par4_chunked", "granularity_chunk_pairs"] {
                assert!(
                    row.series.iter().any(|(n, _)| n == series),
                    "row {} missing {series}",
                    row.x
                );
            }
        }
        let s = service_experiment(tiny(), 42);
        assert!(s.host.is_some(), "service experiment records host metadata");
        assert!(
            fig8g(tiny(), 1).host.is_none(),
            "figure reproductions carry no host block"
        );
    }

    /// Perf-tracking rows must carry a scenario descriptor that round-trips
    /// through the `gpv fuzz --repro` JSON schema; figure reproductions
    /// carry none (their series are paper contrasts, not tracked configs).
    #[test]
    fn perf_rows_carry_parseable_scenario_descriptors() {
        let r = engine_experiment(tiny(), 42);
        for row in &r.rows {
            let json = row
                .scenario
                .as_deref()
                .expect("engine rows describe themselves");
            let sc = Scenario::from_json_line(json).expect("descriptor parses as a Scenario");
            assert!(matches!(sc.graph, GraphSource::Synthetic { .. }));
            assert_eq!(sc.mode, QueryMode::Minimum);
        }
        let s = service_experiment(tiny(), 42);
        for row in &s.rows {
            let json = row
                .scenario
                .as_deref()
                .expect("service rows describe themselves");
            let sc = Scenario::from_json_line(json).expect("descriptor parses as a Scenario");
            assert_eq!(sc.rounds, 2);
            assert_eq!(sc.shards, 8);
        }
        let fig = fig8g(tiny(), 7);
        assert!(
            fig.rows.iter().all(|row| row.scenario.is_none()),
            "figure rows carry no scenario block"
        );
    }

    #[test]
    fn run_one_dispatch() {
        assert!(run_one("fig8g", tiny(), 1).is_some());
        assert!(run_one("service", tiny(), 1).is_some());
        assert!(run_one("maintenance", tiny(), 1).is_some());
        assert!(run_one("nope", tiny(), 1).is_none());
    }

    /// The maintenance bench must contrast the delta pipeline with the
    /// full-rebuild baseline on every row, actually apply updates, and
    /// carry a replayable update-heavy scenario descriptor.
    #[test]
    fn maintenance_rows_contrast_delta_with_rebuild() {
        let r = maintenance_experiment(tiny(), 42);
        assert_eq!(r.id, "maintenance");
        assert!(r.host.is_some(), "maintenance records host metadata");
        let xs: Vec<&str> = r.rows.iter().map(|row| row.x.as_str()).collect();
        assert_eq!(xs, ["1", "8", "64", "64-del"]);
        let del_only = Scenario::from_json_line(r.rows[3].scenario.as_deref().unwrap()).unwrap();
        assert_eq!(
            del_only.delete_ratio, 1.0,
            "last row is the delete-only (truly incremental) case"
        );
        for row in &r.rows {
            let get = |name: &str| {
                row.series
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("row {} missing series {name}", row.x))
            };
            assert!(get("delta_wall_s") >= 0.0 && get("delta_wall_s").is_finite());
            assert!(get("rebuild_wall_s") >= 0.0 && get("rebuild_wall_s").is_finite());
            assert!(get("updates_applied") > 0.0, "deltas must carry updates");
            assert!(get("delta_updates_per_s") > 0.0);
            assert!(get("rebuild_updates_per_s") > 0.0);
            let sc = Scenario::from_json_line(row.scenario.as_deref().expect("descriptor"))
                .expect("descriptor parses as a Scenario");
            assert!(sc.delta_batch_len > 0, "update-heavy scenario");
            assert!(sc.delete_ratio > 0.0, "deletes are part of the stream");
        }
    }

    #[test]
    fn service_rows_cover_client_counts() {
        let r = service_experiment(tiny(), 42);
        assert_eq!(r.id, "service");
        let clients: Vec<&str> = r.rows.iter().map(|row| row.x.as_str()).collect();
        assert_eq!(clients, ["1", "2", "4", "8"]);
        for row in &r.rows {
            let get = |name: &str| {
                row.series
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(get("wall_s") >= 0.0 && get("wall_s").is_finite());
            assert!(get("throughput_qps") > 0.0);
            // 6 distinct queries repeated 4x per batch: the duplicates hit
            // either the intra-batch dedup or the plan cache.
            assert!(get("plan_cache_hit_rate") >= 0.0);
            assert!(get("dedup_saved") >= 18.0 - 1e-9, "per-client dedup");
            // Every client's second round repeats the first at an
            // unchanged store version: the result cache must hit (the
            // CI-level guard against a silent always-miss regression).
            assert!(
                get("result_cache_hits") >= 6.0 - 1e-9,
                "second round must be served from the result cache"
            );
            let hits = get("result_cache_hits");
            let misses = get("result_cache_misses");
            assert!(
                (get("result_cache_hit_rate") - hits / (hits + misses)).abs() < 1e-9,
                "hit rate consistent with the raw counts"
            );
        }
    }
}
