//! Table rendering and JSON export for experiment results.

use crate::experiments::ExperimentResult;
use std::fmt::Write as _;

/// Renders an experiment as an aligned text table (paper-style series).
pub fn render_table(r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} (values in {}) ==", r.id, r.title, r.unit);
    if r.rows.is_empty() {
        out.push_str("(no rows)\n");
        return out;
    }
    // Header.
    let series: Vec<&str> = r.rows[0]
        .series
        .iter()
        .map(|(name, _)| name.as_str())
        .collect();
    let xw = r
        .rows
        .iter()
        .map(|row| row.x.len())
        .max()
        .unwrap_or(1)
        .max(4);
    let _ = write!(out, "{:<xw$}", "x");
    for s in &series {
        let _ = write!(out, "  {s:>18}");
    }
    out.push('\n');
    for row in &r.rows {
        let _ = write!(out, "{:<xw$}", row.x);
        for (_, v) in &row.series {
            let _ = write!(out, "  {v:>18.6}");
        }
        out.push('\n');
    }
    out
}

/// Renders a whole run as a markdown section for EXPERIMENTS.md.
pub fn render_markdown(r: &ExperimentResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {} — {}\n", r.id, r.title);
    if r.rows.is_empty() {
        return out;
    }
    let series: Vec<&str> = r.rows[0].series.iter().map(|(n, _)| n.as_str()).collect();
    let _ = write!(out, "| x |");
    for s in &series {
        let _ = write!(out, " {s} ({}) |", r.unit);
    }
    out.push('\n');
    let _ = write!(out, "|---|");
    for _ in &series {
        let _ = write!(out, "---|");
    }
    out.push('\n');
    for row in &r.rows {
        let _ = write!(out, "| {} |", row.x);
        for (_, v) in &row.series {
            let _ = write!(out, " {v:.6} |");
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Serializes results to pretty JSON.
pub fn to_json(results: &[ExperimentResult]) -> String {
    serde_json::to_string_pretty(results).expect("serializable results")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Row;

    fn sample() -> ExperimentResult {
        ExperimentResult {
            id: "figX".into(),
            title: "test".into(),
            unit: "s".into(),
            host: None,
            rows: vec![Row {
                scenario: None,
                x: "(4,6)".into(),
                series: vec![("Match".into(), 1.25), ("MatchJoin".into(), 0.5)],
            }],
        }
    }

    #[test]
    fn table_contains_values() {
        let t = render_table(&sample());
        assert!(t.contains("figX"));
        assert!(t.contains("1.250000"));
        assert!(t.contains("MatchJoin"));
    }

    #[test]
    fn markdown_is_table() {
        let m = render_markdown(&sample());
        assert!(m.contains("| (4,6) |"));
        assert!(m.contains("| x |"));
    }

    #[test]
    fn json_roundtrip() {
        let j = to_json(&[sample()]);
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v[0]["id"], "figX");
    }
}
