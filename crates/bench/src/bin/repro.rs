//! `repro` — regenerates the paper's evaluation figures and worked examples.
//!
//! ```text
//! repro all                 # every figure at the default scale
//! repro fig8a fig8g         # selected figures
//! repro engine              # QueryEngine planner/parallel-executor bench
//! repro service             # ViewService concurrent-serving bench
//! repro maintenance         # delta maintenance vs full-rebuild bench
//! repro examples            # the paper's worked Examples 1-9
//! repro summary             # headline claims (speedups, ratios)
//! repro all --scale=0.05 --seed=42 --json=out.json --md=EXPERIMENTS.data.md
//! ```
//!
//! Whenever the `engine`, `service`, or `maintenance` experiment runs
//! (directly or via `all`), its result is also written to
//! `BENCH_engine.json` / `BENCH_service.json` / `BENCH_maintenance.json`,
//! so each layer's performance trajectory is recorded per machine across
//! revisions.

use gpv_bench::experiments::{run_all, run_one, ExperimentResult, Scale};
use gpv_bench::report::{render_markdown, render_table, to_json};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <all|examples|summary|engine|service|maintenance|fig8a..fig8l>... [--scale=F] [--seed=N] [--json=PATH] [--md=PATH]");
        std::process::exit(2);
    }
    let mut scale = Scale::default_scale();
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut md_path: Option<String> = None;
    let mut targets: Vec<String> = Vec::new();
    for a in &args {
        if let Some(v) = a.strip_prefix("--scale=") {
            scale = Scale(v.parse().expect("--scale=<f64>"));
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=<u64>");
        } else if let Some(v) = a.strip_prefix("--json=") {
            json_path = Some(v.to_string());
        } else if let Some(v) = a.strip_prefix("--md=") {
            md_path = Some(v.to_string());
        } else {
            targets.push(a.clone());
        }
    }

    let mut results: Vec<ExperimentResult> = Vec::new();
    for t in &targets {
        match t.as_str() {
            "all" => {
                eprintln!("# running all figures at scale {} (seed {seed})", scale.0);
                for r in run_all(scale, seed) {
                    println!("{}", render_table(&r));
                    results.push(r);
                }
            }
            "examples" => examples::run(),
            "summary" => {
                if results.is_empty() {
                    eprintln!("# summary: running all figures first");
                    results = run_all(scale, seed);
                }
                print_summary(&results);
            }
            id => match run_one(id, scale, seed) {
                Some(r) => {
                    println!("{}", render_table(&r));
                    results.push(r);
                }
                None => eprintln!("unknown experiment `{id}`"),
            },
        }
    }

    for (id, path) in [
        ("engine", "BENCH_engine.json"),
        ("service", "BENCH_service.json"),
        ("maintenance", "BENCH_maintenance.json"),
    ] {
        if let Some(result) = results.iter().find(|r| r.id == id) {
            std::fs::write(path, to_json(std::slice::from_ref(result)))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("# wrote {path}");
        }
    }

    if let Some(p) = json_path {
        std::fs::File::create(&p)
            .and_then(|mut f| f.write_all(to_json(&results).as_bytes()))
            .expect("write json");
        eprintln!("# wrote {p}");
    }
    if let Some(p) = md_path {
        let mut md = String::new();
        for r in &results {
            md.push_str(&render_markdown(r));
        }
        std::fs::write(&p, md).expect("write markdown");
        eprintln!("# wrote {p}");
    }
}

/// Headline claims in the style of the paper's summary paragraph.
fn print_summary(results: &[ExperimentResult]) {
    println!("== summary (paper's headline claims vs measured) ==");
    let avg_ratio = |id: &str, base: &str, ours: &str| -> Option<f64> {
        let r = results.iter().find(|r| r.id == id)?;
        let mut num = 0.0;
        let mut den = 0.0;
        for row in &r.rows {
            let get = |name: &str| row.series.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            if let (Some(b), Some(o)) = (get(base), get(ours)) {
                num += o;
                den += b;
            }
        }
        if den > 0.0 {
            Some(num / den)
        } else {
            None
        }
    };
    if let Some(r) = avg_ratio("fig8a", "Match", "MatchJoin_min") {
        println!(
            "fig8a   MatchJoin_min / Match on Amazon:      {:.1}% (paper: ~45% avg across datasets)",
            r * 100.0
        );
    }
    if let Some(r) = avg_ratio("fig8c", "Match", "MatchJoin_min") {
        println!(
            "fig8c   MatchJoin_min / Match on YouTube:     {:.1}% (paper: <49%)",
            r * 100.0
        );
    }
    if let Some(r) = results.iter().find(|r| r.id == "fig8f") {
        // The optimization claim targets dense graphs ("more effective over
        // denser data graphs"): report the densest α point.
        if let Some(row) = r.rows.last() {
            let get = |name: &str| row.series.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
            if let (Some(nopt), Some(min)) = (get("MatchJoin_nopt"), get("MatchJoin_min")) {
                if nopt > 0.0 {
                    println!(
                        "fig8f   optimized / unoptimized at α=1.25:    {:.1}% (paper: ~54%)",
                        min / nopt * 100.0
                    );
                }
            }
        }
    }
    if let Some(r) = avg_ratio("fig8i", "BMatch", "BMatchJoin_min") {
        println!(
            "fig8i   BMatchJoin_min / BMatch on Amazon:    {:.1}% (paper: ~10%)",
            r * 100.0
        );
    }
    if let Some(r) = avg_ratio("fig8l", "BMatch", "BMatchJoin_min") {
        println!(
            "fig8l   BMatchJoin_min / BMatch (synthetic):  {:.1}% (paper: ~6%)",
            r * 100.0
        );
    }
    if let Some(r) = results.iter().find(|r| r.id == "fig8h") {
        let avg_r2: f64 =
            r.rows.iter().map(|row| row.series[1].1).sum::<f64>() / r.rows.len() as f64;
        println!(
            "fig8h   avg |Minimum|/|Minimal| (R2):         {:.1}% (paper: 40-55%)",
            avg_r2 * 100.0
        );
    }
}

/// The paper's worked examples, printed end to end.
mod examples {
    use gpv_core::containment::contain;
    use gpv_core::matchjoin::match_join;
    use gpv_core::minimal::minimal;
    use gpv_core::minimum::minimum;
    use gpv_core::view::{materialize, ViewDef, ViewSet};
    use gpv_graph::{DataGraph, GraphBuilder};
    use gpv_matching::simulation::match_pattern;
    use gpv_pattern::{Pattern, PatternBuilder};

    fn fig1a() -> (DataGraph, Vec<&'static str>) {
        let names = vec![
            "Bob", "Walt", "Mat", "Fred", "Mary", "Dan", "Pat", "Bill", "Jean", "Emmy",
        ];
        let mut b = GraphBuilder::new();
        let bob = b.add_node(["PM"]);
        let walt = b.add_node(["PM"]);
        let mat = b.add_node(["DBA"]);
        let fred = b.add_node(["DBA"]);
        let mary = b.add_node(["DBA"]);
        let dan = b.add_node(["PRG"]);
        let pat = b.add_node(["PRG"]);
        let bill = b.add_node(["PRG"]);
        let jean = b.add_node(["BA"]);
        let emmy = b.add_node(["ST"]);
        b.add_edge(bob, mat);
        b.add_edge(walt, mat);
        b.add_edge(bob, dan);
        b.add_edge(walt, bill);
        b.add_edge(fred, pat);
        b.add_edge(mat, pat);
        b.add_edge(mary, bill);
        b.add_edge(dan, fred);
        b.add_edge(pat, mary);
        b.add_edge(pat, mat);
        b.add_edge(bill, mat);
        b.add_edge(bob, jean);
        b.add_edge(jean, emmy);
        (b.build(), names)
    }

    fn fig1c() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        b.build().unwrap()
    }

    fn fig1_views() -> ViewSet {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(pm, dba);
        b.edge(pm, prg);
        let v1 = b.build().unwrap();
        let mut b = PatternBuilder::new();
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(dba, prg);
        b.edge(prg, dba);
        let v2 = b.build().unwrap();
        ViewSet::new(vec![ViewDef::new("V1", v1), ViewDef::new("V2", v2)])
    }

    pub fn run() {
        let (g, names) = fig1a();
        let q = fig1c();
        let views = fig1_views();

        println!("== Examples 1-4 (Fig. 1): recommendation network ==");
        let direct = match_pattern(&q, &g);
        println!("Match(Qs, G) — Example 2's table:");
        let qlabels = ["PM", "DBA1", "PRG1", "DBA2", "PRG2"];
        for (ei, &(u, v)) in q.edges().iter().enumerate() {
            let pairs: Vec<String> = direct
                .edge_set(gpv_pattern::PatternEdgeId(ei as u32))
                .iter()
                .map(|&(a, b)| format!("({},{})", names[a.index()], names[b.index()]))
                .collect();
            println!(
                "  ({},{}) -> {{{}}}",
                qlabels[u.index()],
                qlabels[v.index()],
                pairs.join(", ")
            );
        }

        println!("\nExample 3: Qs ⊑ {{V1, V2}}?");
        let plan = contain(&q, &views).expect("contained");
        println!("  yes; λ uses views {:?}", plan.used_views);

        let ext = materialize(&views, &g);
        let joined = match_join(&q, &plan, &ext).unwrap();
        println!(
            "MatchJoin over V(G) equals Match over G: {}",
            joined == direct
        );

        println!("\n== Examples 5-7 (Fig. 4): containment & view selection ==");
        let (q4, v4) = fig4();
        let plan = contain(&q4, &v4);
        println!("contain: Qs ⊑ V = {}", plan.is_some());
        let mnl = minimal(&q4, &v4).unwrap();
        let min = minimum(&q4, &v4).unwrap();
        let name =
            |vs: &[usize]| -> Vec<String> { vs.iter().map(|&i| v4.get(i).name.clone()).collect() };
        println!("minimal  -> {:?} (paper: [V2, V3, V4])", name(&mnl.views));
        println!("minimum  -> {:?} (paper: [V5, V6])", name(&min.views));
    }

    fn fig4() -> (Pattern, ViewSet) {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        let d = b.node_labeled("D");
        let e = b.node_labeled("E");
        b.edge(a, bb);
        b.edge(a, c);
        b.edge(bb, d);
        b.edge(c, d);
        b.edge(bb, e);
        let q = b.build().unwrap();

        let single = |x: &str, y: &str| {
            let mut b = PatternBuilder::new();
            let u = b.node_labeled(x);
            let v = b.node_labeled(y);
            b.edge(u, v);
            b.build().unwrap()
        };
        let multi = |edges: &[(&str, &str)]| {
            let mut b = PatternBuilder::new();
            let mut ids = std::collections::HashMap::new();
            for &(x, y) in edges {
                ids.entry(x.to_string())
                    .or_insert_with(|| b.node_labeled(x));
                ids.entry(y.to_string())
                    .or_insert_with(|| b.node_labeled(y));
            }
            for &(x, y) in edges {
                b.edge(ids[x], ids[y]);
            }
            b.build().unwrap()
        };
        let views = ViewSet::new(vec![
            ViewDef::new("V1", single("C", "D")),
            ViewDef::new("V2", single("B", "E")),
            ViewDef::new("V3", multi(&[("A", "B"), ("A", "C")])),
            ViewDef::new("V4", multi(&[("B", "D"), ("C", "D")])),
            ViewDef::new("V5", multi(&[("B", "D"), ("B", "E")])),
            ViewDef::new("V6", multi(&[("A", "B"), ("A", "C"), ("C", "D")])),
            ViewDef::new("V7", multi(&[("A", "B"), ("A", "C"), ("B", "D")])),
        ]);
        (q, views)
    }
}
