//! # gpv-bench — benchmark harness for the paper's evaluation
//!
//! One experiment per figure of Section VII (Fig. 8(a)–(l)), shared between
//! the Criterion benches (`benches/fig8*.rs`) and the `repro` binary that
//! prints the paper-style series and emits machine-readable JSON for
//! EXPERIMENTS.md.
//!
//! Default sizes are scaled down from the paper's (which used 0.5M–1.6M-node
//! graphs on a 2008 testbed) by the `scale` parameter so the full suite runs
//! in minutes; the *shape* of each comparison (who wins, how curves grow) is
//! what the reproduction asserts. See DESIGN.md §S1–S2.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod report;

pub use experiments::{ExperimentResult, Row, Scale};
