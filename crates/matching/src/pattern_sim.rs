//! Pattern-on-pattern simulation: evaluating a view definition `V` over a
//! *query* `Qs` treated as a data graph (paper Section V-A).
//!
//! View matches `M^Qs_V` are defined by computing `V(Qs)`: if `V ⊴sim Qs`,
//! each view edge `eV` gets a match set `S_eV` of *query edges*, and
//! `M^Qs_V = ⋃ S_eV`. Node conditions are compared by predicate
//! **equivalence**: in the paper's single-label model, "`fV(x) ∈ L(u)` where
//! `L(u) = {fv(u)}`" is exactly label equality, and using one-directional
//! implication would let `MatchJoin` admit matches that satisfy the (weaker)
//! view condition but not the query condition — which the join can never
//! filter out since it does not access `G` (DESIGN.md §S3).

use gpv_pattern::{Pattern, PatternEdgeId, PatternNodeId};

/// Result of simulating a view pattern into a query pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PatternSimResult {
    /// `node_matches[x]` = query nodes matching view node `x` (sorted).
    pub node_matches: Vec<Vec<PatternNodeId>>,
    /// `edge_matches[eV]` = query edge ids in `S_eV` (sorted).
    pub edge_matches: Vec<Vec<PatternEdgeId>>,
}

impl PatternSimResult {
    /// The union `⋃_{eV} S_eV` — the view match `M^Qs_V` as a sorted,
    /// deduplicated set of query-edge ids.
    pub fn view_match(&self) -> Vec<PatternEdgeId> {
        let mut all: Vec<PatternEdgeId> = self
            .edge_matches
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }
}

/// Simulates view `v` into query `q` (treating `q` as a data graph).
/// Returns `None` when `v ⋬sim q` (some view node has no query match), in
/// which case `M^Qs_V = ∅`.
pub fn simulate_pattern(v: &Pattern, q: &Pattern) -> Option<PatternSimResult> {
    let nv = v.node_count();

    // Candidates by predicate equivalence.
    let mut cand: Vec<Vec<bool>> = Vec::with_capacity(nv);
    for x in v.nodes() {
        let row: Vec<bool> = q.nodes().map(|u| v.pred(x).equivalent(q.pred(u))).collect();
        if row.iter().all(|&b| !b) {
            return None;
        }
        cand.push(row);
    }

    // Fixpoint refinement (patterns are small: simple iteration suffices and
    // keeps this code obviously correct).
    loop {
        let mut changed = false;
        for x in v.nodes() {
            for u in q.nodes() {
                if !cand[x.index()][u.index()] {
                    continue;
                }
                let ok = v.out_edges(x).iter().all(|&(x2, _)| {
                    q.out_edges(u)
                        .iter()
                        .any(|&(u2, _)| cand[x2.index()][u2.index()])
                });
                if !ok {
                    cand[x.index()][u.index()] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if cand.iter().any(|row| row.iter().all(|&b| !b)) {
        return None;
    }

    // Edge match sets: S_eV for eV = (x, x') are query edges (u, u') with
    // u ∈ sim(x), u' ∈ sim(x').
    let mut edge_matches = Vec::with_capacity(v.edge_count());
    for &(x, x2) in v.edges() {
        let mut set = Vec::new();
        for (ei, &(u, u2)) in q.edges().iter().enumerate() {
            if cand[x.index()][u.index()] && cand[x2.index()][u2.index()] {
                set.push(PatternEdgeId(ei as u32));
            }
        }
        if set.is_empty() {
            // V ⊴sim Qs requires nonempty S_eV for every view edge.
            return None;
        }
        edge_matches.push(set);
    }

    let node_matches = cand
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| PatternNodeId(i as u32))
                .collect()
        })
        .collect();
    Some(PatternSimResult {
        node_matches,
        edge_matches,
    })
}

/// Dual-simulation variant of [`simulate_pattern`]: view nodes must be
/// matched both forward *and* backward (every view in-edge needs a witness
/// query in-edge). Used by dual-simulation view matches (§VIII extension).
pub fn simulate_pattern_dual(v: &Pattern, q: &Pattern) -> Option<PatternSimResult> {
    let nv = v.node_count();

    let mut cand: Vec<Vec<bool>> = Vec::with_capacity(nv);
    for x in v.nodes() {
        let row: Vec<bool> = q.nodes().map(|u| v.pred(x).equivalent(q.pred(u))).collect();
        if row.iter().all(|&b| !b) {
            return None;
        }
        cand.push(row);
    }

    loop {
        let mut changed = false;
        for x in v.nodes() {
            for u in q.nodes() {
                if !cand[x.index()][u.index()] {
                    continue;
                }
                let fwd_ok = v.out_edges(x).iter().all(|&(x2, _)| {
                    q.out_edges(u)
                        .iter()
                        .any(|&(u2, _)| cand[x2.index()][u2.index()])
                });
                let bwd_ok = v.in_edges(x).iter().all(|&(x0, _)| {
                    q.in_edges(u)
                        .iter()
                        .any(|&(u0, _)| cand[x0.index()][u0.index()])
                });
                if !(fwd_ok && bwd_ok) {
                    cand[x.index()][u.index()] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if cand.iter().any(|row| row.iter().all(|&b| !b)) {
        return None;
    }

    let mut edge_matches = Vec::with_capacity(v.edge_count());
    for &(x, x2) in v.edges() {
        let mut set = Vec::new();
        for (ei, &(u, u2)) in q.edges().iter().enumerate() {
            if cand[x.index()][u.index()] && cand[x2.index()][u2.index()] {
                set.push(PatternEdgeId(ei as u32));
            }
        }
        if set.is_empty() {
            return None;
        }
        edge_matches.push(set);
    }
    let node_matches = cand
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_, &b)| b)
                .map(|(i, _)| PatternNodeId(i as u32))
                .collect()
        })
        .collect();
    Some(PatternSimResult {
        node_matches,
        edge_matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_pattern::PatternBuilder;

    /// Paper Fig. 1(c) query.
    fn fig1c() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        b.build().unwrap()
    }

    /// Paper Fig. 1(b) view V1: PM -> DBA, PM -> PRG.
    fn v1() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(pm, dba);
        b.edge(pm, prg);
        b.build().unwrap()
    }

    /// Paper Fig. 1(b) view V2: DBA <-> PRG cycle.
    fn v2() -> Pattern {
        let mut b = PatternBuilder::new();
        let dba = b.node_labeled("DBA");
        let prg = b.node_labeled("PRG");
        b.edge(dba, prg);
        b.edge(prg, dba);
        b.build().unwrap()
    }

    fn edge(q: &Pattern, u: u32, v: u32) -> PatternEdgeId {
        q.edge_id(PatternNodeId(u), PatternNodeId(v)).unwrap()
    }

    #[test]
    fn example_3_v1() {
        // V1's match into Qs covers (PM,DBA1) and (PM,PRG2).
        let q = fig1c();
        let r = simulate_pattern(&v1(), &q).expect("V1 simulates into Qs");
        let m = r.view_match();
        assert!(m.contains(&edge(&q, 0, 1)), "(PM,DBA1)");
        assert!(m.contains(&edge(&q, 0, 4)), "(PM,PRG2)");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn example_3_v2() {
        // V2's match covers the four cycle edges.
        let q = fig1c();
        let r = simulate_pattern(&v2(), &q).expect("V2 simulates into Qs");
        let m = r.view_match();
        assert_eq!(m.len(), 4);
        for (a, b) in [(1, 2), (3, 4), (2, 3), (4, 1)] {
            assert!(m.contains(&edge(&q, a, b)), "({a},{b})");
        }
        // And does NOT cover the PM edges.
        assert!(!m.contains(&edge(&q, 0, 1)));
        assert!(!m.contains(&edge(&q, 0, 4)));
    }

    #[test]
    fn union_covers_all_of_qs() {
        // Example 5: union of V1, V2 view matches equals Ep.
        let q = fig1c();
        let mut covered: Vec<PatternEdgeId> = Vec::new();
        for v in [v1(), v2()] {
            covered.extend(simulate_pattern(&v, &q).unwrap().view_match());
        }
        covered.sort_unstable();
        covered.dedup();
        assert_eq!(covered.len(), q.edge_count());
    }

    #[test]
    fn no_sim_when_label_absent() {
        let q = fig1c();
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("CEO");
        let y = b.node_labeled("PM");
        b.edge(x, y);
        let v = b.build().unwrap();
        assert!(simulate_pattern(&v, &q).is_none());
    }

    #[test]
    fn no_sim_when_structure_absent() {
        // View needs DBA -> PM which Qs lacks.
        let q = fig1c();
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("DBA");
        let y = b.node_labeled("PM");
        b.edge(x, y);
        let v = b.build().unwrap();
        assert!(simulate_pattern(&v, &q).is_none());
    }

    #[test]
    fn equivalence_not_implication() {
        use gpv_pattern::{CmpOp, Predicate};
        // Query node: visits >= 20000 (stronger); view node: visits >= 10000.
        // Implication holds (query => view) but equivalence does not, so the
        // view must NOT match — its extension could contain nodes with
        // 10000 <= visits < 20000 that the join could never filter.
        let mut qb = PatternBuilder::new();
        let a = qb.node(Predicate::cmp("visits", CmpOp::Ge, 20_000i64));
        let b2 = qb.node_labeled("B");
        qb.edge(a, b2);
        let q = qb.build().unwrap();

        let mut vb = PatternBuilder::new();
        let x = vb.node(Predicate::cmp("visits", CmpOp::Ge, 10_000i64));
        let y = vb.node_labeled("B");
        vb.edge(x, y);
        let v = vb.build().unwrap();
        assert!(simulate_pattern(&v, &q).is_none());

        // Identical conditions do match.
        assert!(simulate_pattern(&v, &v).is_some());
    }

    #[test]
    fn self_simulation_is_identity_cover() {
        let q = fig1c();
        let r = simulate_pattern(&q, &q).expect("every pattern simulates itself");
        assert_eq!(r.view_match().len(), q.edge_count());
        // Symmetric labels (two DBA, two PRG nodes in a cycle) mean node
        // matches may be larger than singletons — but each node matches at
        // least itself.
        for u in q.nodes() {
            assert!(r.node_matches[u.index()].contains(&u));
        }
    }

    #[test]
    fn dual_is_stricter_than_plain_on_patterns() {
        // View: A -> B; query: A -> B <- C. Under plain simulation the view
        // matches. Under dual simulation, the view's B node has no in-edge
        // requirement, but the roles reverse when the view has in-edges:
        // view A -> B with B also requiring an in-edge from C fails.
        let q = {
            let mut b = PatternBuilder::new();
            let a = b.node_labeled("A");
            let bb = b.node_labeled("B");
            let c = b.node_labeled("C");
            b.edge(a, bb);
            b.edge(c, bb);
            b.build().unwrap()
        };
        let v = {
            let mut b = PatternBuilder::new();
            let a = b.node_labeled("A");
            let bb = b.node_labeled("B");
            b.edge(a, bb);
            b.build().unwrap()
        };
        assert!(simulate_pattern(&v, &q).is_some());
        assert!(
            simulate_pattern_dual(&v, &q).is_some(),
            "B's extra in-edge is harmless"
        );

        // But a view needing C -> B cannot dual-match a query lacking it.
        let v2 = {
            let mut b = PatternBuilder::new();
            let a = b.node_labeled("A");
            let bb = b.node_labeled("B");
            let c = b.node_labeled("C");
            b.edge(a, bb);
            b.edge(c, bb);
            b.build().unwrap()
        };
        let q2 = {
            let mut b = PatternBuilder::new();
            let a = b.node_labeled("A");
            let bb = b.node_labeled("B");
            b.edge(a, bb);
            b.build().unwrap()
        };
        assert!(simulate_pattern_dual(&v2, &q2).is_none());
        assert!(
            simulate_pattern(&v2, &q2).is_none(),
            "plain also fails: C unmatched"
        );
    }

    #[test]
    fn dual_subset_of_plain_edge_matches() {
        let q = fig1c();
        for v in [v1(), v2()] {
            let plain = simulate_pattern(&v, &q);
            let dual = simulate_pattern_dual(&v, &q);
            if let (Some(p), Some(d)) = (plain, dual) {
                for (pe, de) in p.edge_matches.iter().zip(&d.edge_matches) {
                    for e in de {
                        assert!(pe.contains(e), "dual ⊆ plain per view edge");
                    }
                }
            }
        }
    }

    #[test]
    fn view_larger_than_query_can_still_match() {
        // View: A -> B -> C; query: single SCC A->B->C->A. View simulates in.
        let mut vb = PatternBuilder::new();
        let a = vb.node_labeled("A");
        let b = vb.node_labeled("B");
        let c = vb.node_labeled("C");
        vb.edge(a, b);
        vb.edge(b, c);
        let v = vb.build().unwrap();

        let mut qb = PatternBuilder::new();
        let x = qb.node_labeled("A");
        let y = qb.node_labeled("B");
        let z = qb.node_labeled("C");
        qb.edge(x, y);
        qb.edge(y, z);
        qb.edge(z, x);
        let q = qb.build().unwrap();
        let r = simulate_pattern(&v, &q).unwrap();
        assert_eq!(r.view_match().len(), 2, "covers (A,B) and (B,C), not (C,A)");
    }
}
