//! Dual simulation — extension per the paper's Section VIII pointer to
//! *Capturing Topology in Graph Pattern Matching* (Ma et al., VLDB 2011).
//!
//! Dual simulation strengthens graph simulation with *backward* edge
//! preservation: `(u, v) ∈ S` additionally requires that for every pattern
//! edge `(u'', u)` there is a graph edge `(v'', v)` with `(u'', v'') ∈ S`.
//! The paper notes its view-based techniques "can be readily extended to
//! revisions of simulation such as dual and strong simulation ... retaining
//! the same complexity"; this module provides the dual-simulation engine
//! those extensions build on.

use crate::result::MatchResult;
use gpv_graph::{BitSet, DataGraph, NodeId};
use gpv_pattern::{Pattern, PatternNodeId};

/// Computes the maximum dual-simulation relation, or `None` when empty.
pub fn dual_simulation_relation(q: &Pattern, g: &DataGraph) -> Option<Vec<BitSet>> {
    let n = g.node_count();
    let np = q.node_count();

    let mut cand: Vec<BitSet> = Vec::with_capacity(np);
    for u in q.nodes() {
        let resolved = q.pred(u).resolve(g);
        let mut set = BitSet::new(n);
        for v in g.nodes() {
            if resolved.satisfied_by(g, v) {
                set.insert(v.index());
            }
        }
        if set.is_empty() {
            return None;
        }
        cand.push(set);
    }

    // Forward counters per edge (source side) and backward counters per edge
    // (target side).
    let ne = q.edge_count();
    let mut fwd: Vec<Vec<u32>> = vec![vec![0; n]; ne];
    let mut bwd: Vec<Vec<u32>> = vec![vec![0; n]; ne];
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
    let mut scheduled = vec![BitSet::new(n); np];

    for (ei, &(u, t)) in q.edges().iter().enumerate() {
        let (cu, ct) = (cand[u.index()].clone(), cand[t.index()].clone());
        for v in cu.iter() {
            let cnt = g
                .out_neighbors(NodeId(v as u32))
                .iter()
                .filter(|w| ct.contains(w.index()))
                .count() as u32;
            fwd[ei][v] = cnt;
            if cnt == 0 && scheduled[u.index()].insert(v) {
                worklist.push((u, NodeId(v as u32)));
            }
        }
        for v in ct.iter() {
            let cnt = g
                .in_neighbors(NodeId(v as u32))
                .iter()
                .filter(|w| cu.contains(w.index()))
                .count() as u32;
            bwd[ei][v] = cnt;
            if cnt == 0 && scheduled[t.index()].insert(v) {
                worklist.push((t, NodeId(v as u32)));
            }
        }
    }

    let mut head = 0;
    while head < worklist.len() {
        let (u, v) = worklist[head];
        head += 1;
        if !cand[u.index()].remove(v.index()) {
            continue;
        }
        if cand[u.index()].is_empty() {
            return None;
        }
        // Forward propagation: predecessors lose a witness.
        for &(u0, e0) in q.in_edges(u) {
            for &w in g.in_neighbors(v) {
                if cand[u0.index()].contains(w.index())
                    && !scheduled[u0.index()].contains(w.index())
                {
                    let s = &mut fwd[e0.index()][w.index()];
                    *s = s.saturating_sub(1);
                    if *s == 0 {
                        scheduled[u0.index()].insert(w.index());
                        worklist.push((u0, w));
                    }
                }
            }
        }
        // Backward propagation: successors lose a witness.
        for &(t2, e2) in q.out_edges(u) {
            for &w in g.out_neighbors(v) {
                if cand[t2.index()].contains(w.index())
                    && !scheduled[t2.index()].contains(w.index())
                {
                    let s = &mut bwd[e2.index()][w.index()];
                    *s = s.saturating_sub(1);
                    if *s == 0 {
                        scheduled[t2.index()].insert(w.index());
                        worklist.push((t2, w));
                    }
                }
            }
        }
    }
    Some(cand)
}

/// Computes the dual-simulation result of `q` over `g` (edge match sets
/// derived exactly as for plain simulation).
pub fn dual_match_pattern(q: &Pattern, g: &DataGraph) -> MatchResult {
    let Some(cand) = dual_simulation_relation(q, g) else {
        return MatchResult::empty();
    };
    let mut edge_matches = Vec::with_capacity(q.edge_count());
    for &(u, t) in q.edges() {
        let (cu, ct) = (&cand[u.index()], &cand[t.index()]);
        let mut set = Vec::new();
        for v in cu.iter() {
            let v = NodeId(v as u32);
            for &w in g.out_neighbors(v) {
                if ct.contains(w.index()) {
                    set.push((v, w));
                }
            }
        }
        if set.is_empty() {
            return MatchResult::empty();
        }
        edge_matches.push(set);
    }
    let node_matches = cand
        .iter()
        .map(|s| s.iter().map(|i| NodeId(i as u32)).collect())
        .collect();
    MatchResult::new(q, node_matches, edge_matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::simulation_relation;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    /// G where plain and dual simulation differ:
    /// A1 -> B1, A1 -> B2, C1 -> B2  vs pattern A -> B <- C.
    /// Plain sim: B1 matches B (no backward check). Dual sim: B1 fails —
    /// it has no C predecessor.
    fn setup() -> (DataGraph, Pattern, NodeId, NodeId) {
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let b2 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(a1, b2);
        b.add_edge(c1, b2);
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        let uc = pb.node_labeled("C");
        pb.edge(ua, ub);
        pb.edge(uc, ub);
        let q = pb.build().unwrap();
        (g, q, b1, b2)
    }

    #[test]
    fn dual_is_stricter_than_plain() {
        let (g, q, b1, b2) = setup();
        let plain = simulation_relation(&q, &g).unwrap();
        let dual = dual_simulation_relation(&q, &g).unwrap();
        let ub = 1usize; // pattern node B index
        assert!(plain[ub].contains(b1.index()), "plain admits B1");
        assert!(!dual[ub].contains(b1.index()), "dual rejects B1");
        assert!(dual[ub].contains(b2.index()));
        // Dual ⊆ plain on every pattern node.
        for u in 0..q.node_count() {
            assert!(dual[u].is_subset(&plain[u]));
        }
    }

    #[test]
    fn dual_match_sets() {
        let (g, q, _, b2) = setup();
        let r = dual_match_pattern(&q, &g);
        assert!(!r.is_empty());
        // Every edge match targets b2 now.
        for set in &r.edge_matches {
            for &(_, t) in set {
                assert_eq!(t, b2);
            }
        }
    }

    #[test]
    fn dual_empty_when_backward_unsatisfiable() {
        // G: A -> B only; Q: A -> B <- C with no C in G at all.
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let bb = b.add_node(["B"]);
        b.add_edge(a, bb);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        let uc = pb.node_labeled("C");
        pb.edge(ua, ub);
        pb.edge(uc, ub);
        let q = pb.build().unwrap();
        assert!(dual_simulation_relation(&q, &g).is_none());
        assert!(dual_match_pattern(&q, &g).is_empty());
    }

    #[test]
    fn dual_equals_plain_on_symmetric_instance() {
        // When every match also has the needed predecessors, dual == plain.
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let bb = b.add_node(["B"]);
        b.add_edge(a, bb);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        pb.edge(ua, ub);
        let q = pb.build().unwrap();
        let plain = simulation_relation(&q, &g).unwrap();
        let dual = dual_simulation_relation(&q, &g).unwrap();
        for u in 0..q.node_count() {
            assert_eq!(
                plain[u].iter().collect::<Vec<_>>(),
                dual[u].iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn cascade_through_both_directions() {
        // Chain pattern A -> B -> C; graph where removing the C-match of one
        // branch kills B (forward), which kills its A (forward), and
        // backward constraints kill an orphan B with no A predecessor.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        let b_orphan = b.add_node(["B"]);
        let c2 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(b1, c1);
        b.add_edge(b_orphan, c2);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        let uc = pb.node_labeled("C");
        pb.edge(ua, ub);
        pb.edge(ub, uc);
        let q = pb.build().unwrap();
        let dual = dual_simulation_relation(&q, &g).unwrap();
        assert!(
            !dual[1].contains(b_orphan.index()),
            "orphan B lacks an A pred"
        );
        assert!(
            !dual[2].contains(c2.index()),
            "c2's only path is via orphan"
        );
        assert!(dual[1].contains(b1.index()));
    }
}
