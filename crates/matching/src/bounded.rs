//! Bounded-simulation matching — the paper's `BMatch` baseline (\[16\],
//! Section VI).
//!
//! A bounded pattern edge `e = (u, u')` with `fe(e) = k` maps to a *nonempty
//! path* of length ≤ k (any length for `*`). The maximum bounded-simulation
//! relation is computed by the same counter/worklist refinement as plain
//! simulation, with the successor test replaced by bounded BFS:
//!
//! * support counters are initialized by a forward bounded BFS per
//!   (edge, candidate source);
//! * when `w` stops matching `u'`, the candidates of `u` that counted `w`
//!   are exactly the ancestors of `w` within the bound — found by a
//!   *reverse* bounded BFS, so nothing needs to store the balls.
//!
//! This is cubic-ish in `|G|` — `O(|Qb||G|²)` like the paper's `BMatch` —
//! and is precisely the cost that `BMatchJoin` avoids.

use crate::result::BoundedMatchResult;
use gpv_graph::traverse::{bounded_bfs, BfsScratch, Direction};
use gpv_graph::{BitSet, DataGraph, NodeId};
use gpv_pattern::{BoundedPattern, EdgeBound, PatternNodeId};

fn bound_to_u32(b: EdgeBound) -> u32 {
    match b {
        EdgeBound::Hop(k) => k,
        EdgeBound::Unbounded => u32::MAX,
    }
}

/// Computes `Qb(G)` by bounded simulation (the `BMatch` baseline).
pub fn bmatch_pattern(qb: &BoundedPattern, g: &DataGraph) -> BoundedMatchResult {
    match bounded_simulation_relation(qb, g) {
        Some(cand) => build_result(qb, g, &cand),
        None => BoundedMatchResult::empty(),
    }
}

/// Computes the maximum bounded-simulation relation, or `None` if some
/// pattern node has no match.
pub fn bounded_simulation_relation(qb: &BoundedPattern, g: &DataGraph) -> Option<Vec<BitSet>> {
    let q = qb.pattern();
    let n = g.node_count();
    let np = q.node_count();
    let ne = q.edge_count();

    let mut cand: Vec<BitSet> = Vec::with_capacity(np);
    for u in q.nodes() {
        let resolved = q.pred(u).resolve(g);
        let mut set = BitSet::new(n);
        for v in g.nodes() {
            if resolved.satisfied_by(g, v) {
                set.insert(v.index());
            }
        }
        if set.is_empty() {
            return None;
        }
        cand.push(set);
    }

    let mut scratch = BfsScratch::new(n);
    let mut support: Vec<Vec<u32>> = vec![vec![0; n]; ne];
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
    let mut scheduled = vec![BitSet::new(n); np];

    for (ei, &(u, t)) in q.edges().iter().enumerate() {
        let bound = bound_to_u32(qb.bound(gpv_pattern::PatternEdgeId(ei as u32)));
        let ct = cand[t.index()].clone();
        for v in cand[u.index()].iter() {
            bounded_bfs(g, NodeId(v as u32), bound, Direction::Out, &mut scratch);
            let cnt = scratch
                .visited
                .iter()
                .filter(|&&(w, _)| ct.contains(w.index()))
                .count() as u32;
            support[ei][v] = cnt;
            if cnt == 0 && scheduled[u.index()].insert(v) {
                worklist.push((u, NodeId(v as u32)));
            }
        }
    }

    let mut head = 0;
    while head < worklist.len() {
        let (u, v) = worklist[head];
        head += 1;
        if !cand[u.index()].remove(v.index()) {
            continue;
        }
        if cand[u.index()].is_empty() {
            return None;
        }
        // v stopped matching u: every bounded in-edge e0 = (u0, u) loses the
        // witness v for each *ancestor* of v within the bound.
        for &(u0, e0) in q.in_edges(u) {
            let bound = bound_to_u32(qb.bound(e0));
            bounded_bfs(g, v, bound, Direction::In, &mut scratch);
            let ei = e0.index();
            for &(w, _) in &scratch.visited {
                if cand[u0.index()].contains(w.index())
                    && !scheduled[u0.index()].contains(w.index())
                {
                    let s = &mut support[ei][w.index()];
                    debug_assert!(*s > 0, "support underflow");
                    *s -= 1;
                    if *s == 0 {
                        scheduled[u0.index()].insert(w.index());
                        worklist.push((u0, w));
                    }
                }
            }
        }
    }
    Some(cand)
}

/// Derives `{(e, Se)}` with shortest witness distances from the relation.
fn build_result(qb: &BoundedPattern, g: &DataGraph, cand: &[BitSet]) -> BoundedMatchResult {
    let q = qb.pattern();
    let mut scratch = BfsScratch::new(g.node_count());
    let mut edge_matches = Vec::with_capacity(q.edge_count());
    for (ei, &(u, t)) in q.edges().iter().enumerate() {
        let bound = bound_to_u32(qb.bound(gpv_pattern::PatternEdgeId(ei as u32)));
        let ct = &cand[t.index()];
        let mut set = Vec::new();
        for v in cand[u.index()].iter() {
            let v = NodeId(v as u32);
            bounded_bfs(g, v, bound, Direction::Out, &mut scratch);
            for &(w, d) in &scratch.visited {
                if ct.contains(w.index()) {
                    set.push((v, w, d));
                }
            }
        }
        debug_assert!(!set.is_empty());
        edge_matches.push(set);
    }
    let node_matches = cand
        .iter()
        .map(|s| s.iter().map(|i| NodeId(i as u32)).collect())
        .collect();
    BoundedMatchResult::new(q, node_matches, edge_matches)
}

/// Checks `Qb ⊴Bsim G` without materializing match sets.
pub fn bmatches(qb: &BoundedPattern, g: &DataGraph) -> bool {
    bounded_simulation_relation(qb, g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::{PatternBuilder, PatternEdgeId};

    /// Paper Fig. 3(a), reconstructed to be consistent with both Example 4
    /// (plain MatchJoin walk-through) and Example 8 (bounded result table):
    /// PM1 -> {AI1, AI2}, AI2 -> {Bio1, SE2}, DB1 -> AI2, DB2 -> AI1,
    /// AI1 -> SE1, SE1 -> {DB2, Bio1}, SE2 -> DB1.
    fn fig3a() -> (DataGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let pm1 = b.add_node(["PM"]);
        let ai1 = b.add_node(["AI"]);
        let ai2 = b.add_node(["AI"]);
        let bio1 = b.add_node(["Bio"]);
        let se1 = b.add_node(["SE"]);
        let se2 = b.add_node(["SE"]);
        let db1 = b.add_node(["DB"]);
        let db2 = b.add_node(["DB"]);
        b.add_edge(pm1, ai1);
        b.add_edge(pm1, ai2);
        b.add_edge(ai2, bio1);
        b.add_edge(db1, ai2);
        b.add_edge(db2, ai1);
        b.add_edge(ai1, se1);
        b.add_edge(ai2, se2);
        b.add_edge(se1, db2);
        b.add_edge(se2, db1);
        // Example 8's (AI1, Bio1) at distance 2 goes via SE1 -> Bio1.
        b.add_edge(se1, bio1);
        let g = b.build();
        (g, vec![pm1, ai1, ai2, bio1, se1, se2, db1, db2])
    }

    /// Paper Fig. 3(c) pattern as a bounded query (Example 8):
    /// fe(AI,Bio) = 2, all other edges 1.
    fn example8_qb() -> BoundedPattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let ai = b.node_labeled("AI");
        let bio = b.node_labeled("Bio");
        let db = b.node_labeled("DB");
        let se = b.node_labeled("SE");
        b.edge_bounded(pm, ai, 1);
        b.edge_bounded(ai, bio, 2);
        b.edge_bounded(db, ai, 1);
        b.edge_bounded(ai, se, 1);
        b.edge_bounded(se, db, 1);
        b.build_bounded().unwrap()
    }

    fn pairs(r: &BoundedMatchResult, q: &BoundedPattern, u: u32, v: u32) -> Vec<(u32, u32)> {
        let e = q
            .pattern()
            .edge_id(PatternNodeId(u), PatternNodeId(v))
            .unwrap();
        r.edge_set(e).iter().map(|&(a, b, _)| (a.0, b.0)).collect()
    }

    #[test]
    fn paper_example_8() {
        let (g, n) = fig3a();
        let qb = example8_qb();
        let r = bmatch_pattern(&qb, &g);
        assert!(!r.is_empty());
        let (pm1, ai1, ai2, bio1, se1, se2, db1, db2) = (
            n[0].0, n[1].0, n[2].0, n[3].0, n[4].0, n[5].0, n[6].0, n[7].0,
        );
        // (PM,AI): (PM1,AI1), (PM1,AI2) — AI1 qualifies under the bounded
        // query because it reaches Bio1 within 2 hops (via SE1).
        assert_eq!(pairs(&r, &qb, 0, 1), vec![(pm1, ai1), (pm1, ai2)]);
        // (AI,Bio) with fe=2: (AI1,Bio1) via SE1 (d=2) and (AI2,Bio1) (d=1).
        let mut expect = vec![(ai1, bio1), (ai2, bio1)];
        expect.sort();
        assert_eq!(pairs(&r, &qb, 1, 2), expect);
        // Distances recorded correctly.
        let e = qb
            .pattern()
            .edge_id(PatternNodeId(1), PatternNodeId(2))
            .unwrap();
        for &(a, b, d) in r.edge_set(e) {
            if a.0 == ai1 && b.0 == bio1 {
                assert_eq!(d, 2);
            }
            if a.0 == ai2 && b.0 == bio1 {
                assert_eq!(d, 1);
            }
        }
        // (DB,AI): DB1->AI2, DB2->AI1 (both AI nodes match under bounds).
        let mut expect = vec![(db1, ai2), (db2, ai1)];
        expect.sort();
        assert_eq!(pairs(&r, &qb, 3, 1), expect);
        // (AI,SE): AI1->SE1, AI2->SE2.
        let mut expect = vec![(ai1, se1), (ai2, se2)];
        expect.sort();
        assert_eq!(pairs(&r, &qb, 1, 4), expect);
        // (SE,DB): SE1->DB2, SE2->DB1.
        let mut expect = vec![(se1, db2), (se2, db1)];
        expect.sort();
        assert_eq!(pairs(&r, &qb, 4, 3), expect);
    }

    #[test]
    fn plain_bound_agrees_with_simulation() {
        use crate::simulation::match_pattern;
        let (g, _) = fig3a();
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let ai = b.node_labeled("AI");
        let se = b.node_labeled("SE");
        let db = b.node_labeled("DB");
        b.edge(pm, ai);
        b.edge(ai, se);
        b.edge(se, db);
        b.edge(db, ai);
        let q = b.build().unwrap();
        let plain = match_pattern(&q, &g);
        let bounded = bmatch_pattern(&BoundedPattern::from_pattern(q.clone()), &g);
        assert_eq!(plain.is_empty(), bounded.is_empty());
        if !plain.is_empty() {
            assert_eq!(plain.edge_matches, bounded.pairs());
            assert_eq!(plain.node_matches, bounded.node_matches);
        }
    }

    #[test]
    fn unbounded_edge_uses_reachability() {
        // G: chain A -> x -> x -> B of length 3.
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let m1 = b.add_node(["M"]);
        let m2 = b.add_node(["M"]);
        let z = b.add_node(["B"]);
        b.add_edge(a, m1);
        b.add_edge(m1, m2);
        b.add_edge(m2, z);
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        pb.edge_unbounded(x, y);
        let q = pb.build_bounded().unwrap();
        let r = bmatch_pattern(&q, &g);
        assert_eq!(r.edge_set(PatternEdgeId(0)), &[(a, z, 3)]);

        // With bound 2 it fails.
        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        pb.edge_bounded(x, y, 2);
        let q2 = pb.build_bounded().unwrap();
        assert!(bmatch_pattern(&q2, &g).is_empty());

        // With bound 3 it succeeds.
        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        pb.edge_bounded(x, y, 3);
        let q3 = pb.build_bounded().unwrap();
        assert!(!bmatch_pattern(&q3, &g).is_empty());
    }

    #[test]
    fn cascading_removal_through_bounds() {
        // G: A -> m -> B1 (B1 lacks C within 2), A' -> m' -> B2 -> c -> C.
        // Q: A -[2]-> B -[2]-> C.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let m1 = b.add_node(["M"]);
        let b1 = b.add_node(["B"]);
        let a2 = b.add_node(["A"]);
        let m2 = b.add_node(["M"]);
        let b2 = b.add_node(["B"]);
        let c1 = b.add_node(["M"]);
        let cc = b.add_node(["C"]);
        b.add_edge(a1, m1);
        b.add_edge(m1, b1);
        b.add_edge(a2, m2);
        b.add_edge(m2, b2);
        b.add_edge(b2, c1);
        b.add_edge(c1, cc);
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        let z = pb.node_labeled("C");
        pb.edge_bounded(x, y, 2);
        pb.edge_bounded(y, z, 2);
        let q = pb.build_bounded().unwrap();
        let r = bmatch_pattern(&q, &g);
        assert_eq!(r.node_set(x), &[a2], "a1's only B is b1, which dies");
        assert_eq!(r.node_set(y), &[b2]);
    }

    #[test]
    fn self_pair_via_cycle() {
        // G: single node with self loop; Q: A -[*]-> A (same node twice).
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        b.add_edge(a, a);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        pb.edge_bounded(x, x, 1);
        let q = pb.build_bounded().unwrap();
        let r = bmatch_pattern(&q, &g);
        assert_eq!(r.edge_set(PatternEdgeId(0)), &[(a, a, 1)]);
    }

    #[test]
    fn empty_when_no_candidates() {
        let (g, _) = fig3a();
        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("Nope");
        let y = pb.node_labeled("AI");
        pb.edge_bounded(x, y, 3);
        let q = pb.build_bounded().unwrap();
        assert!(bmatch_pattern(&q, &g).is_empty());
        assert!(!bmatches(&q, &g));
    }

    #[test]
    fn larger_bound_is_monotone() {
        let (g, _) = fig3a();
        let build = |k: u32| {
            let mut b = PatternBuilder::new();
            let ai = b.node_labeled("AI");
            let bio = b.node_labeled("Bio");
            b.edge_bounded(ai, bio, k);
            b.build_bounded().unwrap()
        };
        let r1 = bmatch_pattern(&build(1), &g);
        let r2 = bmatch_pattern(&build(2), &g);
        let r4 = bmatch_pattern(&build(4), &g);
        assert!(r1.size() <= r2.size());
        assert!(r2.size() <= r4.size());
        // All r1 pairs appear in r2.
        let p1 = r1.pairs();
        let p2 = r2.pairs();
        for e in &p1[0] {
            assert!(p2[0].contains(e));
        }
    }
}
