//! Graph-simulation matching — the paper's `Match` baseline (\[16\], \[21\]).
//!
//! Computes the unique *maximum* match relation `S ⊆ Vp × V` such that
//!
//! 1. every pattern node has at least one match, and
//! 2. for each `(u, v) ∈ S`: `v` satisfies `fv(u)`, and for every pattern
//!    edge `(u, u')` there is a graph edge `(v, v')` with `(u', v') ∈ S`.
//!
//! The implementation is the standard counter-based refinement (in the
//! spirit of Henzinger-Henzinger-Kopke): a support counter per (pattern
//! edge, candidate source) tracks how many witnessing successors remain;
//! when it hits zero the candidate is removed and the removal propagates to
//! its predecessors through a worklist. Runs in
//! `O(|Vp||V| + |Ep||E|)` time — within the paper's
//! `O(|Qs|² + |Qs||G| + |G|²)` bound.

use crate::result::MatchResult;
use gpv_graph::{BitSet, DataGraph, NodeId};
use gpv_pattern::{Pattern, PatternNodeId};

/// Computes `Qs(G)` by graph simulation (the `Match` baseline).
pub fn match_pattern(q: &Pattern, g: &DataGraph) -> MatchResult {
    match simulation_relation(q, g) {
        Some(cand) => build_result(q, g, &cand),
        None => MatchResult::empty(),
    }
}

/// Computes only the maximum simulation relation as per-pattern-node
/// candidate bitsets, or `None` if some pattern node has no match.
pub fn simulation_relation(q: &Pattern, g: &DataGraph) -> Option<Vec<BitSet>> {
    let n = g.node_count();
    let np = q.node_count();

    // Candidate sets from node conditions.
    let mut cand: Vec<BitSet> = Vec::with_capacity(np);
    for u in q.nodes() {
        let resolved = q.pred(u).resolve(g);
        let mut set = BitSet::new(n);
        for v in g.nodes() {
            if resolved.satisfied_by(g, v) {
                set.insert(v.index());
            }
        }
        if set.is_empty() {
            return None;
        }
        cand.push(set);
    }

    // Support counters: support[e][v] = |post(v) ∩ cand(target(e))| for v a
    // candidate of source(e). Dense per edge; `u32::MAX` marks non-candidates.
    let ne = q.edge_count();
    let mut support: Vec<Vec<u32>> = vec![vec![0; n]; ne];
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
    // in_worklist guards against duplicate scheduling of the same removal.
    for (ei, &(u, t)) in q.edges().iter().enumerate() {
        let (cu, ct) = (&cand[u.index()], &cand[t.index()]);
        for v in cu.iter() {
            let cnt = g
                .out_neighbors(NodeId(v as u32))
                .iter()
                .filter(|w| ct.contains(w.index()))
                .count() as u32;
            support[ei][v] = cnt;
            if cnt == 0 {
                worklist.push((u, NodeId(v as u32)));
            }
        }
    }

    // Refinement: remove unsupported candidates and propagate.
    let mut removed = vec![BitSet::new(n); np];
    for &(u, v) in &worklist {
        removed[u.index()].insert(v.index());
    }
    let mut head = 0;
    while head < worklist.len() {
        let (u, v) = worklist[head];
        head += 1;
        if !cand[u.index()].remove(v.index()) {
            continue;
        }
        if cand[u.index()].is_empty() {
            return None;
        }
        // v no longer matches u: every in-pattern-edge e0 = (u0, u) loses the
        // witness v for each in-neighbor w of v that is a candidate of u0.
        for &(u0, e0) in q.in_edges(u) {
            let ei = e0.index();
            for &w in g.in_neighbors(v) {
                if cand[u0.index()].contains(w.index()) && !removed[u0.index()].contains(w.index())
                {
                    let s = &mut support[ei][w.index()];
                    debug_assert!(*s > 0, "support underflow");
                    *s -= 1;
                    if *s == 0 {
                        removed[u0.index()].insert(w.index());
                        worklist.push((u0, w));
                    }
                }
            }
        }
    }
    Some(cand)
}

/// Derives the edge match sets `{(e, Se)}` from a simulation relation.
fn build_result(q: &Pattern, g: &DataGraph, cand: &[BitSet]) -> MatchResult {
    let mut edge_matches = Vec::with_capacity(q.edge_count());
    for &(u, t) in q.edges() {
        let (cu, ct) = (&cand[u.index()], &cand[t.index()]);
        let mut set = Vec::new();
        for v in cu.iter() {
            let v = NodeId(v as u32);
            for &w in g.out_neighbors(v) {
                if ct.contains(w.index()) {
                    set.push((v, w));
                }
            }
        }
        debug_assert!(!set.is_empty(), "maximum simulation has nonempty Se");
        edge_matches.push(set);
    }
    let node_matches = cand
        .iter()
        .map(|s| s.iter().map(|i| NodeId(i as u32)).collect())
        .collect();
    MatchResult::new(q, node_matches, edge_matches)
}

/// Checks `Qs ⊴sim G` without materializing edge match sets.
pub fn matches(q: &Pattern, g: &DataGraph) -> bool {
    simulation_relation(q, g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_graph::GraphBuilder;
    use gpv_pattern::PatternBuilder;

    /// The paper's Fig. 1(a) recommendation network.
    ///
    /// Nodes: Bob(PM)=0, Walt(PM)=1, Mat(DBA)=2, Fred(DBA)=3, Mary(DBA)=4,
    /// Dan(PRG)=5, Pat(PRG)=6, Bill(PRG)=7, Jean(BA)=8, Emmy(ST)=9.
    pub(crate) fn fig1a() -> (DataGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let bob = b.add_node(["PM"]);
        let walt = b.add_node(["PM"]);
        let mat = b.add_node(["DBA"]);
        let fred = b.add_node(["DBA"]);
        let mary = b.add_node(["DBA"]);
        let dan = b.add_node(["PRG"]);
        let pat = b.add_node(["PRG"]);
        let bill = b.add_node(["PRG"]);
        let jean = b.add_node(["BA"]);
        let emmy = b.add_node(["ST"]);
        // Edges per Fig. 1(a) / Example 2's expected result:
        // (PM,DBA1): Bob->Mat, Walt->Mat
        b.add_edge(bob, mat);
        b.add_edge(walt, mat);
        // (PM,PRG2): Bob->Dan, Walt->Bill
        b.add_edge(bob, dan);
        b.add_edge(walt, bill);
        // (DBA,PRG): Fred->Pat, Mat->Pat, Mary->Bill
        b.add_edge(fred, pat);
        b.add_edge(mat, pat);
        b.add_edge(mary, bill);
        // (PRG,DBA): Dan->Fred, Pat->Mary, Pat->Mat, Bill->Mat
        b.add_edge(dan, fred);
        b.add_edge(pat, mary);
        b.add_edge(pat, mat);
        b.add_edge(bill, mat);
        // Context nodes (not matched by Qs): Jean, Emmy.
        b.add_edge(bob, jean);
        b.add_edge(jean, emmy);
        let g = b.build();
        (
            g,
            vec![bob, walt, mat, fred, mary, dan, pat, bill, jean, emmy],
        )
    }

    /// The paper's Fig. 1(c) pattern Qs.
    pub(crate) fn fig1c() -> Pattern {
        let mut b = PatternBuilder::new();
        let pm = b.node_labeled("PM");
        let dba1 = b.node_labeled("DBA");
        let prg1 = b.node_labeled("PRG");
        let dba2 = b.node_labeled("DBA");
        let prg2 = b.node_labeled("PRG");
        b.edge(pm, dba1);
        b.edge(pm, prg2);
        b.edge(dba1, prg1);
        b.edge(prg1, dba2);
        b.edge(dba2, prg2);
        b.edge(prg2, dba1);
        b.build().unwrap()
    }

    fn pairs(r: &MatchResult, q: &Pattern, u: u32, v: u32) -> Vec<(u32, u32)> {
        let e = q
            .edge_id(PatternNodeId(u), PatternNodeId(v))
            .expect("edge exists");
        r.edge_set(e).iter().map(|&(a, b)| (a.0, b.0)).collect()
    }

    #[test]
    fn paper_example_2() {
        let (g, n) = fig1a();
        let q = fig1c();
        let r = match_pattern(&q, &g);
        assert!(!r.is_empty());
        let id = |v: NodeId| v.0;
        let (bob, walt, mat, fred, mary, dan, pat, bill) = (
            id(n[0]),
            id(n[1]),
            id(n[2]),
            id(n[3]),
            id(n[4]),
            id(n[5]),
            id(n[6]),
            id(n[7]),
        );
        // (PM, DBA1) = {(Bob,Mat), (Walt,Mat)}
        assert_eq!(pairs(&r, &q, 0, 1), vec![(bob, mat), (walt, mat)]);
        // (PM, PRG2) = {(Bob,Dan), (Walt,Bill)}
        assert_eq!(pairs(&r, &q, 0, 4), vec![(bob, dan), (walt, bill)]);
        // (DBA1, PRG1) = {(Fred,Pat), (Mat,Pat), (Mary,Bill)} — sorted by id
        let mut expect = vec![(fred, pat), (mat, pat), (mary, bill)];
        expect.sort();
        assert_eq!(pairs(&r, &q, 1, 2), expect);
        // (DBA2, PRG2) identical
        assert_eq!(pairs(&r, &q, 3, 4), expect);
        // (PRG1, DBA2) = {(Dan,Fred), (Pat,Mary), (Pat,Mat), (Bill,Mat)}
        let mut expect2 = vec![(dan, fred), (pat, mary), (pat, mat), (bill, mat)];
        expect2.sort();
        assert_eq!(pairs(&r, &q, 2, 3), expect2);
        assert_eq!(pairs(&r, &q, 4, 1), expect2);
        // Node matches.
        assert_eq!(r.node_set(PatternNodeId(0)), &[NodeId(bob), NodeId(walt)]);
    }

    #[test]
    fn no_match_when_label_missing() {
        let (g, _) = fig1a();
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("CEO");
        let y = b.node_labeled("PM");
        b.edge(x, y);
        let q = b.build().unwrap();
        assert!(match_pattern(&q, &g).is_empty());
        assert!(!matches(&q, &g));
    }

    #[test]
    fn no_match_when_structure_missing() {
        // G: A -> B; Q: B -> A.
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        b.add_edge(a, c);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("B");
        let y = pb.node_labeled("A");
        pb.edge(x, y);
        let q = pb.build().unwrap();
        assert!(match_pattern(&q, &g).is_empty());
    }

    #[test]
    fn cascading_removal() {
        // G: A1 -> B1 (B1 has no C successor), A2 -> B2 -> C1.
        // Q: A -> B -> C. Only (A2,B2,C1) chain survives.
        let mut b = GraphBuilder::new();
        let a1 = b.add_node(["A"]);
        let b1 = b.add_node(["B"]);
        let a2 = b.add_node(["A"]);
        let b2 = b.add_node(["B"]);
        let c1 = b.add_node(["C"]);
        b.add_edge(a1, b1);
        b.add_edge(a2, b2);
        b.add_edge(b2, c1);
        let g = b.build();

        let mut pb = PatternBuilder::new();
        let x = pb.node_labeled("A");
        let y = pb.node_labeled("B");
        let z = pb.node_labeled("C");
        pb.edge(x, y);
        pb.edge(y, z);
        let q = pb.build().unwrap();
        let r = match_pattern(&q, &g);
        assert_eq!(r.node_set(x), &[a2]);
        assert_eq!(r.node_set(y), &[b2]);
        assert_eq!(r.node_set(z), &[c1]);
        assert_eq!(r.size(), 2);
    }

    #[test]
    fn cyclic_pattern_on_cyclic_graph() {
        // G: x(A) <-> y(B); Q: A <-> B. Both directions match.
        let mut b = GraphBuilder::new();
        let x = b.add_node(["A"]);
        let y = b.add_node(["B"]);
        b.add_edge(x, y);
        b.add_edge(y, x);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        pb.edge(ua, ub);
        pb.edge(ub, ua);
        let q = pb.build().unwrap();
        let r = match_pattern(&q, &g);
        assert_eq!(r.size(), 2);
    }

    #[test]
    fn cyclic_pattern_fails_on_dag() {
        // G: x(A) -> y(B), no back edge; Q: A <-> B.
        let mut b = GraphBuilder::new();
        let x = b.add_node(["A"]);
        let y = b.add_node(["B"]);
        b.add_edge(x, y);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        pb.edge(ua, ub);
        pb.edge(ub, ua);
        let q = pb.build().unwrap();
        assert!(match_pattern(&q, &g).is_empty());
    }

    #[test]
    fn simulation_is_maximal() {
        // Every pair (u, v) where v could consistently simulate u must be in
        // the relation: check against brute-force greatest fixpoint.
        let (g, _) = fig1a();
        let q = fig1c();
        let cand = simulation_relation(&q, &g).unwrap();
        // Brute force: start from label-satisfying sets, iterate removal.
        let mut brute: Vec<Vec<bool>> = q
            .nodes()
            .map(|u| {
                let rp = q.pred(u).resolve(&g);
                g.nodes().map(|v| rp.satisfied_by(&g, v)).collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for u in q.nodes() {
                for v in g.nodes() {
                    if !brute[u.index()][v.index()] {
                        continue;
                    }
                    let ok = q.out_edges(u).iter().all(|&(t, _)| {
                        g.out_neighbors(v)
                            .iter()
                            .any(|w| brute[t.index()][w.index()])
                    });
                    if !ok {
                        brute[u.index()][v.index()] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for u in q.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    cand[u.index()].contains(v.index()),
                    brute[u.index()][v.index()],
                    "disagreement at ({u}, {v})"
                );
            }
        }
    }

    #[test]
    fn self_loop_pattern() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(["A"]);
        let y = b.add_node(["A"]);
        b.add_edge(x, x);
        b.add_edge(x, y);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let u = pb.node_labeled("A");
        pb.edge(u, u);
        let q = pb.build().unwrap();
        let r = match_pattern(&q, &g);
        // Only x has a self-loop... but simulation allows x->x and also any
        // node whose successor simulates A-with-loop: y has no out-edge, so
        // only x survives.
        assert_eq!(r.node_set(u), &[x]);
        assert_eq!(r.edge_set(gpv_pattern::PatternEdgeId(0)), &[(x, x)]);
    }

    #[test]
    fn wildcard_node_matches_everything_with_structure() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(["A"]);
        let y = b.add_node(["B"]);
        b.add_edge(x, y);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        let u = pb.node_any();
        let w = pb.node_any();
        pb.edge(u, w);
        let q = pb.build().unwrap();
        let r = match_pattern(&q, &g);
        // u matches x (has successor); w matches both.
        assert_eq!(r.node_set(u), &[x]);
        assert_eq!(r.node_set(w), &[x, y]);
    }
}
