//! Strong simulation — extension per the paper's Section VIII pointer to
//! Ma et al. (VLDB 2011).
//!
//! Strong simulation restricts dual simulation by *locality*: a node `w`
//! is a strong-simulation match if the dual simulation of `Q` inside the
//! ball `B(w, dQ)` (undirected radius `dQ` = diameter of `Q`) contains `w`
//! as a match of some query node. This captures topology (bounded cycles)
//! that plain/dual simulation over the whole graph does not.

use crate::dual::dual_simulation_relation;
use gpv_graph::{BitSet, DataGraph, GraphBuilder, NodeId, Value};
use gpv_pattern::{Pattern, PatternNodeId};
use std::collections::VecDeque;

/// Undirected diameter of the pattern (longest shortest undirected path);
/// patterns are assumed weakly connected — for safety, disconnected pairs
/// are ignored.
pub fn pattern_diameter(q: &Pattern) -> u32 {
    let n = q.node_count();
    let mut diam = 0u32;
    let mut dist = vec![u32::MAX; n];
    for s in 0..n {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            let d = dist[v];
            let u = PatternNodeId(v as u32);
            let nbrs = q
                .out_edges(u)
                .iter()
                .map(|&(w, _)| w.index())
                .chain(q.in_edges(u).iter().map(|&(w, _)| w.index()));
            for w in nbrs {
                if dist[w] == u32::MAX {
                    dist[w] = d + 1;
                    diam = diam.max(d + 1);
                    queue.push_back(w);
                }
            }
        }
    }
    diam
}

/// Extracts the ball `B(center, r)`: the subgraph induced by all nodes within
/// undirected distance `r` of `center`. Returns the ball graph plus the
/// mapping from ball node ids back to original ids.
pub fn extract_ball(g: &DataGraph, center: NodeId, r: u32) -> (DataGraph, Vec<NodeId>) {
    let mut dist = vec![u32::MAX; g.node_count()];
    dist[center.index()] = 0;
    let mut members = vec![center];
    let mut queue = VecDeque::from([center]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d >= r {
            continue;
        }
        let nbrs = g
            .out_neighbors(v)
            .iter()
            .chain(g.in_neighbors(v).iter())
            .copied();
        for w in nbrs {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
    }
    members.sort_unstable();
    let mut local = vec![u32::MAX; g.node_count()];
    for (i, &v) in members.iter().enumerate() {
        local[v.index()] = i as u32;
    }

    let mut b = GraphBuilder::with_capacity(members.len(), members.len() * 2);
    for &v in &members {
        let labels: Vec<&str> = g.labels_of(v).iter().map(|&l| g.label_name(l)).collect();
        let nv = b.add_node(labels.iter().copied());
        for (aid, val) in g.attrs_of(v) {
            let owned = match val {
                gpv_graph::ValueRef::Int(i) => Value::Int(i),
                gpv_graph::ValueRef::Str(s) => Value::str(s),
            };
            b.set_attr(nv, g.attr_name(aid), owned);
        }
    }
    for &v in &members {
        for &w in g.out_neighbors(v) {
            if local[w.index()] != u32::MAX {
                b.add_edge(NodeId(local[v.index()]), NodeId(local[w.index()]));
            }
        }
    }
    (b.build(), members)
}

/// Strong-simulation node matches: `matches[u]` = data nodes `w` such that
/// `w` matches `u` under dual simulation restricted to `B(w, dQ)`.
///
/// Returns `None` when no query node has any strong match. This is the
/// quality-over-speed reference implementation (one ball per candidate), as
/// used for the extension experiments; it is not meant to compete with
/// `Match` on large graphs.
pub fn strong_simulation_matches(q: &Pattern, g: &DataGraph) -> Option<Vec<Vec<NodeId>>> {
    let r = pattern_diameter(q);
    let n = g.node_count();

    // Pre-filter: only nodes that appear in the global dual simulation can be
    // strong matches (strong ⊆ dual, Ma et al. Prop. 4.2-style containment).
    let global = dual_simulation_relation(q, g)?;
    let mut interesting = BitSet::new(n);
    for s in &global {
        interesting.union_with(s);
    }

    let mut matches: Vec<Vec<NodeId>> = vec![Vec::new(); q.node_count()];
    for w in interesting.iter() {
        let w = NodeId(w as u32);
        let (ball, members) = extract_ball(g, w, r);
        let Some(local_sim) = dual_simulation_relation(q, &ball) else {
            continue;
        };
        let local_w = members.binary_search(&w).expect("center in ball");
        for u in q.nodes() {
            if local_sim[u.index()].contains(local_w) {
                matches[u.index()].push(w);
            }
        }
    }
    if matches.iter().any(Vec::is_empty) {
        return None;
    }
    for m in &mut matches {
        m.sort_unstable();
        m.dedup();
    }
    Some(matches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_pattern::PatternBuilder;

    #[test]
    fn diameter_of_chain() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        let z = b.node_labeled("C");
        b.edge(x, y);
        b.edge(y, z);
        let q = b.build().unwrap();
        assert_eq!(pattern_diameter(&q), 2);
    }

    #[test]
    fn diameter_of_cycle() {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge(x, y);
        b.edge(y, x);
        let q = b.build().unwrap();
        assert_eq!(pattern_diameter(&q), 1);
    }

    #[test]
    fn ball_extraction() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5)
            .map(|i| b.add_node([["A", "B", "C", "D", "E"][i]]))
            .collect();
        // chain 0 - 1 - 2 - 3 - 4 (directed forward)
        for i in 0..4 {
            b.add_edge(n[i], n[i + 1]);
        }
        let g = b.build();
        let (ball, members) = extract_ball(&g, n[2], 1);
        assert_eq!(members, vec![n[1], n[2], n[3]]);
        assert_eq!(ball.node_count(), 3);
        assert_eq!(ball.edge_count(), 2); // 1->2, 2->3
        let (ball2, members2) = extract_ball(&g, n[0], 10);
        assert_eq!(members2.len(), 5);
        assert_eq!(ball2.edge_count(), 4);
    }

    #[test]
    fn ball_preserves_attrs() {
        let mut b = GraphBuilder::new();
        let x = b.add_node(["V"]);
        b.set_attr(x, "rate", Value::int(5));
        let y = b.add_node(["V"]);
        b.add_edge(x, y);
        let g = b.build();
        let (ball, members) = extract_ball(&g, x, 1);
        let lx = members.binary_search(&x).unwrap();
        assert_eq!(
            ball.attr_int(NodeId(lx as u32), ball.lookup_attr("rate").unwrap()),
            Some(5)
        );
    }

    #[test]
    fn strong_is_subset_of_dual() {
        // Ma et al.'s motivating shape: a long cycle matches a short cycle
        // under dual simulation but not under strong simulation when the
        // ball radius cuts the long cycle.
        // Q: A <-> B (cycle of length 2, diameter 1).
        // G: A1 -> B1 -> A2 -> B2 -> A1 (cycle of length 4) — dual-sim
        // matches; strong sim within radius-1 balls fails the cycle.
        let mut gb = GraphBuilder::new();
        let a1 = gb.add_node(["A"]);
        let b1 = gb.add_node(["B"]);
        let a2 = gb.add_node(["A"]);
        let b2 = gb.add_node(["B"]);
        gb.add_edge(a1, b1);
        gb.add_edge(b1, a2);
        gb.add_edge(a2, b2);
        gb.add_edge(b2, a1);
        let g = gb.build();

        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        pb.edge(ua, ub);
        pb.edge(ub, ua);
        let q = pb.build().unwrap();

        assert!(
            dual_simulation_relation(&q, &g).is_some(),
            "dual simulation is fooled by the unrolled cycle"
        );
        assert!(
            strong_simulation_matches(&q, &g).is_none(),
            "strong simulation rejects it: no 2-cycle within any ball"
        );
    }

    #[test]
    fn strong_accepts_true_cycle() {
        let mut gb = GraphBuilder::new();
        let a = gb.add_node(["A"]);
        let b = gb.add_node(["B"]);
        gb.add_edge(a, b);
        gb.add_edge(b, a);
        let g = gb.build();

        let mut pb = PatternBuilder::new();
        let ua = pb.node_labeled("A");
        let ub = pb.node_labeled("B");
        pb.edge(ua, ub);
        pb.edge(ub, ua);
        let q = pb.build().unwrap();
        let m = strong_simulation_matches(&q, &g).expect("true 2-cycle matches");
        assert_eq!(m[0], vec![a]);
        assert_eq!(m[1], vec![b]);
    }
}
