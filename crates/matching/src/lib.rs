//! # gpv-matching — (bounded) graph-simulation matching engines
//!
//! The matching substrate of *Answering Graph Pattern Queries Using Views*
//! (Fan, Wang, Wu — ICDE 2014):
//!
//! * [`simulation`] — graph simulation, the `Match` baseline (\[21\], \[16\]);
//! * [`bounded`] — bounded simulation, the `BMatch` baseline (\[16\], §VI);
//! * [`pattern_sim`] — a view simulated *into a query* treated as a data
//!   graph, producing view matches `M^Qs_V` (§V-A);
//! * [`bounded_pattern_sim`] — the weighted-graph analogue for `M^Qb_V`
//!   (§VI-B);
//! * [`dual`] / [`strong`] — dual and strong simulation (the §VIII
//!   extensions);
//! * [`result`] — match results `{(e, Se)}` with the paper's `|Q(G)|`
//!   size measure.

#![forbid(unsafe_code)]

pub mod bounded;
pub mod bounded_pattern_sim;
pub mod dual;
pub mod pattern_sim;
pub mod result;
pub mod simulation;
pub mod strong;

pub use bounded::{bmatch_pattern, bmatches, bounded_simulation_relation};
pub use bounded_pattern_sim::{bounded_node_matches, simulate_bounded_pattern};
pub use dual::{dual_match_pattern, dual_simulation_relation};
pub use pattern_sim::{simulate_pattern, simulate_pattern_dual, PatternSimResult};
pub use result::{BoundedMatchResult, MatchResult};
pub use simulation::{match_pattern, matches, simulation_relation};
pub use strong::{extract_ball, pattern_diameter, strong_simulation_matches};
