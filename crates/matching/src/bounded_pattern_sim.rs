//! Bounded pattern-on-pattern simulation: evaluating a bounded view `V` over
//! a bounded query `Qb` treated as a *weighted* data graph (paper Section
//! VI-B).
//!
//! "We treat Qb as a weighted data graph in which each edge e has a weight
//! fe(e). The distance from node u to u' in Qb is given by the minimum sum of
//! the edge weights on shortest paths from u to u'." A view edge
//! `eV = (x, x')` with bound `k` is witnessed by a query node pair `(u, u')`
//! whose weighted distance is ≤ k; a `*` view edge is witnessed by
//! reachability. Node conditions compare by predicate equivalence, exactly
//! as in the unweighted case.

use gpv_pattern::{BoundedPattern, EdgeBound, PatternNodeId};

/// The maximum bounded simulation of view `v` into weighted query `qb`, as
/// boolean candidate rows (`cand[x][u]`), or `None` when some view node has
/// no query match.
pub fn simulate_bounded_pattern(v: &BoundedPattern, qb: &BoundedPattern) -> Option<Vec<Vec<bool>>> {
    let vp = v.pattern();
    let qp = qb.pattern();
    let nv = vp.node_count();
    let nq = qp.node_count();

    // Precompute weighted distances / reachability between all query-node
    // pairs (patterns are small; |Vp|² Dijkstras are cheap).
    let mut wdist = vec![vec![None; nq]; nq];
    let mut reach = vec![vec![false; nq]; nq];
    for a in qp.nodes() {
        for b in qp.nodes() {
            wdist[a.index()][b.index()] = qb.weighted_distance(a, b);
            reach[a.index()][b.index()] = qb.reaches(a, b);
        }
    }
    let witnesses = |bound: EdgeBound, a: usize, b: usize| -> bool {
        match bound {
            EdgeBound::Hop(k) => wdist[a][b].is_some_and(|d| d <= k as u64),
            EdgeBound::Unbounded => reach[a][b],
        }
    };

    let mut cand: Vec<Vec<bool>> = Vec::with_capacity(nv);
    for x in vp.nodes() {
        let row: Vec<bool> = qp
            .nodes()
            .map(|u| vp.pred(x).equivalent(qp.pred(u)))
            .collect();
        if row.iter().all(|&b| !b) {
            return None;
        }
        cand.push(row);
    }

    loop {
        let mut changed = false;
        for x in vp.nodes() {
            for u in 0..nq {
                if !cand[x.index()][u] {
                    continue;
                }
                let ok = vp.out_edges(x).iter().all(|&(x2, ev)| {
                    let bound = v.bound(ev);
                    (0..nq).any(|u2| cand[x2.index()][u2] && witnesses(bound, u, u2))
                });
                if !ok {
                    cand[x.index()][u] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if cand.iter().any(|row| row.iter().all(|&b| !b)) {
        return None;
    }
    Some(cand)
}

/// Sorted node-match lists derived from [`simulate_bounded_pattern`].
pub fn bounded_node_matches(
    v: &BoundedPattern,
    qb: &BoundedPattern,
) -> Option<Vec<Vec<PatternNodeId>>> {
    let cand = simulate_bounded_pattern(v, qb)?;
    Some(
        cand.iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|&(_, &b)| b)
                    .map(|(i, _)| PatternNodeId(i as u32))
                    .collect()
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_pattern::PatternBuilder;

    /// Query: A -\[3\]-> B -\[2\]-> C.
    fn qb() -> BoundedPattern {
        let mut b = PatternBuilder::new();
        let a = b.node_labeled("A");
        let bb = b.node_labeled("B");
        let c = b.node_labeled("C");
        b.edge_bounded(a, bb, 3);
        b.edge_bounded(bb, c, 2);
        b.build_bounded().unwrap()
    }

    #[test]
    fn view_with_looser_bounds_matches() {
        // View: A -[5]-> B. Weighted dist A->B in Qb is 3 ≤ 5.
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("B");
        vb.edge_bounded(x, y, 5);
        let v = vb.build_bounded().unwrap();
        let cand = simulate_bounded_pattern(&v, &qb()).expect("matches");
        assert!(cand[0][0] && cand[1][1]);
    }

    #[test]
    fn view_with_tighter_bounds_fails() {
        // View: A -[2]-> B. dist A->B in Qb is 3 > 2: A-node has no witness.
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("B");
        vb.edge_bounded(x, y, 2);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &qb()).is_none());
    }

    #[test]
    fn view_edge_spanning_path() {
        // View: A -[5]-> C. dist A->C = 3 + 2 = 5 ≤ 5 via B.
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("C");
        vb.edge_bounded(x, y, 5);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &qb()).is_some());
        // But 4 is too tight.
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("C");
        vb.edge_bounded(x, y, 4);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &qb()).is_none());
    }

    #[test]
    fn star_view_edge_uses_reachability() {
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("C");
        vb.edge_unbounded(x, y);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &qb()).is_some());
        // Reversed direction is unreachable.
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("C");
        let y = vb.node_labeled("A");
        vb.edge_unbounded(x, y);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &qb()).is_none());
    }

    #[test]
    fn star_query_edge_blocks_bounded_view_edge() {
        // Query: A -[*]-> B. View: A -[9]-> B. The only witness distance is
        // unbounded (∞ > 9), so the view cannot simulate in.
        let mut qbuilder = PatternBuilder::new();
        let a = qbuilder.node_labeled("A");
        let b = qbuilder.node_labeled("B");
        qbuilder.edge_unbounded(a, b);
        let q = qbuilder.build_bounded().unwrap();

        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("B");
        vb.edge_bounded(x, y, 9);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &q).is_none());

        // A * view edge does cover it.
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("A");
        let y = vb.node_labeled("B");
        vb.edge_unbounded(x, y);
        let v = vb.build_bounded().unwrap();
        assert!(simulate_bounded_pattern(&v, &q).is_some());
    }

    #[test]
    fn node_match_lists() {
        let mut vb = PatternBuilder::new();
        let x = vb.node_labeled("B");
        let y = vb.node_labeled("C");
        vb.edge_bounded(x, y, 2);
        let v = vb.build_bounded().unwrap();
        let m = bounded_node_matches(&v, &qb()).unwrap();
        assert_eq!(m[0], vec![PatternNodeId(1)]);
        assert_eq!(m[1], vec![PatternNodeId(2)]);
    }
}
