//! Match results `Qs(G)` and `Qb(G)`.
//!
//! The paper defines the result of a pattern query as the set
//! `{(e, Se) | e ∈ Ep}` derived from the unique maximum match relation,
//! where `Se` is the match set of pattern edge `e`; the result is `∅` when
//! `G` does not match `Qs`. We additionally expose the node match sets
//! (the maximum relation itself), which the proofs and tests use.

use gpv_graph::NodeId;
use gpv_pattern::{Pattern, PatternEdgeId, PatternNodeId};
use serde::{Deserialize, Serialize};

/// Result of matching a plain pattern via graph simulation.
///
/// Invariants (enforced by the constructors in this crate):
/// * either *all* node/edge match sets are nonempty, or the result is empty;
/// * all sets are sorted and deduplicated.
///
/// Equality compares **edge match sets only** — the paper defines `Qs(G)` as
/// `{(e, Se)}`. The node sets are auxiliary: `Match` reports the full maximum
/// simulation relation, while `MatchJoin` can only see nodes that occur in
/// some match pair (a simulation-relation member that appears in no `Se` is
/// invisible from views), so comparing them would be too strict.
#[derive(Clone, Debug, Eq, Serialize, Deserialize)]
pub struct MatchResult {
    /// `node_matches[u]` = matches of pattern node `u` (sorted).
    pub node_matches: Vec<Vec<NodeId>>,
    /// `edge_matches[e]` = the match set `Se` (sorted pairs).
    pub edge_matches: Vec<Vec<(NodeId, NodeId)>>,
}

impl PartialEq for MatchResult {
    fn eq(&self, other: &Self) -> bool {
        self.edge_matches == other.edge_matches
    }
}

impl MatchResult {
    /// The empty result (`Qs(G) = ∅`): no sets at all.
    pub fn empty() -> Self {
        MatchResult {
            node_matches: Vec::new(),
            edge_matches: Vec::new(),
        }
    }

    /// Builds a result, normalizing set order. Panics if arity disagrees
    /// with the pattern or any set is empty (use [`empty`](Self::empty)).
    pub fn new(
        pattern: &Pattern,
        mut node_matches: Vec<Vec<NodeId>>,
        mut edge_matches: Vec<Vec<(NodeId, NodeId)>>,
    ) -> Self {
        assert_eq!(node_matches.len(), pattern.node_count());
        assert_eq!(edge_matches.len(), pattern.edge_count());
        for s in &mut node_matches {
            assert!(!s.is_empty(), "nonempty node match sets required");
            s.sort_unstable();
            s.dedup();
        }
        for s in &mut edge_matches {
            assert!(!s.is_empty(), "nonempty edge match sets required");
            s.sort_unstable();
            s.dedup();
        }
        MatchResult {
            node_matches,
            edge_matches,
        }
    }

    /// Whether `Qs(G) = ∅`.
    pub fn is_empty(&self) -> bool {
        self.edge_matches.is_empty()
    }

    /// The match set `Se` of edge `e`.
    pub fn edge_set(&self, e: PatternEdgeId) -> &[(NodeId, NodeId)] {
        &self.edge_matches[e.index()]
    }

    /// The matches of pattern node `u`.
    pub fn node_set(&self, u: PatternNodeId) -> &[NodeId] {
        &self.node_matches[u.index()]
    }

    /// The paper's `|Qs(G)|`: total number of edges across all `Se`.
    pub fn size(&self) -> usize {
        self.edge_matches.iter().map(Vec::len).sum()
    }
}

/// Result of matching a bounded pattern via bounded simulation.
///
/// Each edge match carries the *shortest* hop distance `d` of a witnessing
/// nonempty path (`1 ≤ d ≤ fe(e)` for bounded edges). Distances feed the
/// paper's index `I(V)` used by `BMatchJoin`.
///
/// Like [`MatchResult`], equality compares edge match sets only.
#[derive(Clone, Debug, Eq, Serialize, Deserialize)]
pub struct BoundedMatchResult {
    /// `node_matches[u]` = matches of pattern node `u` (sorted).
    pub node_matches: Vec<Vec<NodeId>>,
    /// `edge_matches[e]` = `{(v, v', d)}` sorted by `(v, v')`.
    pub edge_matches: Vec<Vec<(NodeId, NodeId, u32)>>,
}

impl PartialEq for BoundedMatchResult {
    fn eq(&self, other: &Self) -> bool {
        self.edge_matches == other.edge_matches
    }
}

impl BoundedMatchResult {
    /// The empty result.
    pub fn empty() -> Self {
        BoundedMatchResult {
            node_matches: Vec::new(),
            edge_matches: Vec::new(),
        }
    }

    /// Builds a result, normalizing order; panics on arity mismatch or empty
    /// sets.
    pub fn new(
        pattern: &Pattern,
        mut node_matches: Vec<Vec<NodeId>>,
        mut edge_matches: Vec<Vec<(NodeId, NodeId, u32)>>,
    ) -> Self {
        assert_eq!(node_matches.len(), pattern.node_count());
        assert_eq!(edge_matches.len(), pattern.edge_count());
        for s in &mut node_matches {
            assert!(!s.is_empty(), "nonempty node match sets required");
            s.sort_unstable();
            s.dedup();
        }
        for s in &mut edge_matches {
            assert!(!s.is_empty(), "nonempty edge match sets required");
            s.sort_unstable();
            s.dedup();
        }
        BoundedMatchResult {
            node_matches,
            edge_matches,
        }
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.edge_matches.is_empty()
    }

    /// Match set of edge `e` with distances.
    pub fn edge_set(&self, e: PatternEdgeId) -> &[(NodeId, NodeId, u32)] {
        &self.edge_matches[e.index()]
    }

    /// Matches of node `u`.
    pub fn node_set(&self, u: PatternNodeId) -> &[NodeId] {
        &self.node_matches[u.index()]
    }

    /// `|Qb(G)|`: total pairs across all match sets.
    pub fn size(&self) -> usize {
        self.edge_matches.iter().map(Vec::len).sum()
    }

    /// Drops distances, yielding pair sets comparable with plain results.
    pub fn pairs(&self) -> Vec<Vec<(NodeId, NodeId)>> {
        self.edge_matches
            .iter()
            .map(|s| s.iter().map(|&(a, b, _)| (a, b)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpv_pattern::PatternBuilder;

    fn two_node_pattern() -> Pattern {
        let mut b = PatternBuilder::new();
        let x = b.node_labeled("A");
        let y = b.node_labeled("B");
        b.edge(x, y);
        b.build().unwrap()
    }

    #[test]
    fn normalizes_order() {
        let p = two_node_pattern();
        let r = MatchResult::new(
            &p,
            vec![vec![NodeId(2), NodeId(1), NodeId(2)], vec![NodeId(0)]],
            vec![vec![(NodeId(2), NodeId(0)), (NodeId(1), NodeId(0))]],
        );
        assert_eq!(r.node_set(PatternNodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(
            r.edge_set(PatternEdgeId(0)),
            &[(NodeId(1), NodeId(0)), (NodeId(2), NodeId(0))]
        );
        assert_eq!(r.size(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn empty_result() {
        let r = MatchResult::empty();
        assert!(r.is_empty());
        assert_eq!(r.size(), 0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_empty_sets() {
        let p = two_node_pattern();
        let _ = MatchResult::new(&p, vec![vec![NodeId(0)], vec![]], vec![vec![]]);
    }

    #[test]
    fn bounded_pairs() {
        let p = two_node_pattern();
        let r = BoundedMatchResult::new(
            &p,
            vec![vec![NodeId(0)], vec![NodeId(1)]],
            vec![vec![(NodeId(0), NodeId(1), 2)]],
        );
        assert_eq!(r.pairs(), vec![vec![(NodeId(0), NodeId(1))]]);
        assert_eq!(r.size(), 1);
    }

    #[test]
    fn semantic_equality() {
        let p = two_node_pattern();
        let a = MatchResult::new(
            &p,
            vec![vec![NodeId(1), NodeId(0)], vec![NodeId(2)]],
            vec![vec![(NodeId(1), NodeId(2)), (NodeId(0), NodeId(2))]],
        );
        let b = MatchResult::new(
            &p,
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]],
            vec![vec![(NodeId(0), NodeId(2)), (NodeId(1), NodeId(2))]],
        );
        assert_eq!(a, b);
    }
}
