//! BFS primitives: bounded `k`-hop exploration, shortest hop-distances and
//! reachability.
//!
//! These are the building blocks of bounded simulation (paper Section VI):
//! a bounded pattern edge `fe(u, u') = k` maps to a *nonempty* path of length
//! at most `k`, so all traversals here measure paths of length ≥ 1 — the
//! source itself is reported only if it lies on a cycle.

use crate::graph::{DataGraph, NodeId};

/// Which adjacency to follow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Follow out-edges (descendants).
    Out,
    /// Follow in-edges (ancestors).
    In,
}

/// Reusable scratch space for BFS so repeated traversals do not reallocate.
#[derive(Clone, Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    epoch: Vec<u32>,
    current_epoch: u32,
    queue: std::collections::VecDeque<NodeId>,
    /// `(node, distance)` pairs discovered by the last traversal, distance ≥ 1.
    pub visited: Vec<(NodeId, u32)>,
}

impl BfsScratch {
    /// Creates scratch space for graphs with up to `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            dist: vec![0; n],
            epoch: vec![0; n],
            current_epoch: 0,
            queue: std::collections::VecDeque::new(),
            visited: Vec::new(),
        }
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.epoch.resize(n, 0);
        }
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            // Epoch counter wrapped: hard-reset to stay sound.
            self.epoch.iter_mut().for_each(|e| *e = 0);
            self.current_epoch = 1;
        }
        self.queue.clear();
        self.visited.clear();
    }

    #[inline]
    fn is_seen(&self, v: NodeId) -> bool {
        self.epoch[v.index()] == self.current_epoch
    }

    #[inline]
    fn mark(&mut self, v: NodeId, d: u32) {
        self.epoch[v.index()] = self.current_epoch;
        self.dist[v.index()] = d;
    }

    /// Distance of `v` recorded by the last traversal, if visited.
    pub fn distance_of(&self, v: NodeId) -> Option<u32> {
        if self.is_seen(v) {
            Some(self.dist[v.index()])
        } else {
            None
        }
    }
}

/// Explores all nodes reachable from `src` by a nonempty path of at most
/// `bound` hops, following `dir` edges. Results (node, hop-distance) land in
/// `scratch.visited`; distances are exact shortest nonempty-path lengths.
///
/// `bound = u32::MAX` means unbounded (plain reachability with distances).
pub fn bounded_bfs(
    g: &DataGraph,
    src: NodeId,
    bound: u32,
    dir: Direction,
    scratch: &mut BfsScratch,
) {
    scratch.begin(g.node_count());
    if bound == 0 {
        return;
    }
    // Seed with src's neighbours at distance 1; src itself is *not* marked,
    // so it can be discovered again through a cycle (nonempty path).
    let first: &[NodeId] = match dir {
        Direction::Out => g.out_neighbors(src),
        Direction::In => g.in_neighbors(src),
    };
    for &n in first {
        if !scratch.is_seen(n) {
            scratch.mark(n, 1);
            scratch.visited.push((n, 1));
            scratch.queue.push_back(n);
        }
    }
    while let Some(v) = scratch.queue.pop_front() {
        let d = scratch.dist[v.index()];
        if d >= bound {
            continue;
        }
        let next: &[NodeId] = match dir {
            Direction::Out => g.out_neighbors(v),
            Direction::In => g.in_neighbors(v),
        };
        for &n in next {
            if !scratch.is_seen(n) {
                scratch.mark(n, d + 1);
                scratch.visited.push((n, d + 1));
                scratch.queue.push_back(n);
            }
        }
    }
}

/// Shortest nonempty-path hop distance from `u` to `v`, capped at `bound`
/// (`None` if unreachable within the bound). `u == v` requires a cycle.
pub fn bounded_distance(
    g: &DataGraph,
    u: NodeId,
    v: NodeId,
    bound: u32,
    scratch: &mut BfsScratch,
) -> Option<u32> {
    scratch.begin(g.node_count());
    if bound == 0 {
        return None;
    }
    for &n in g.out_neighbors(u) {
        if n == v {
            return Some(1);
        }
        if !scratch.is_seen(n) {
            scratch.mark(n, 1);
            scratch.queue.push_back(n);
        }
    }
    while let Some(w) = scratch.queue.pop_front() {
        let d = scratch.dist[w.index()];
        if d >= bound {
            continue;
        }
        for &n in g.out_neighbors(w) {
            if n == v {
                return Some(d + 1);
            }
            if !scratch.is_seen(n) {
                scratch.mark(n, d + 1);
                scratch.queue.push_back(n);
            }
        }
    }
    None
}

/// Convenience wrapper: all `(node, dist)` within `bound` hops from `src`
/// following out-edges, as an owned vector.
pub fn descendants_within(g: &DataGraph, src: NodeId, bound: u32) -> Vec<(NodeId, u32)> {
    let mut s = BfsScratch::new(g.node_count());
    bounded_bfs(g, src, bound, Direction::Out, &mut s);
    s.visited
}

/// Convenience wrapper: all `(node, dist)` that reach `src` within `bound`
/// hops (in-edges).
pub fn ancestors_within(g: &DataGraph, src: NodeId, bound: u32) -> Vec<(NodeId, u32)> {
    let mut s = BfsScratch::new(g.node_count());
    bounded_bfs(g, src, bound, Direction::In, &mut s);
    s.visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// 0 -> 1 -> 2 -> 3 -> 1 (cycle 1-2-3), 0 -> 4
    fn cyclic() -> DataGraph {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_unlabeled_node()).collect();
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.add_edge(n[2], n[3]);
        b.add_edge(n[3], n[1]);
        b.add_edge(n[0], n[4]);
        b.build()
    }

    #[test]
    fn bounded_bfs_distances() {
        let g = cyclic();
        let d = descendants_within(&g, NodeId(0), 2);
        let mut d: Vec<_> = d.into_iter().map(|(n, k)| (n.0, k)).collect();
        d.sort();
        assert_eq!(d, vec![(1, 1), (2, 2), (4, 1)]);
    }

    #[test]
    fn source_on_cycle_is_rediscovered() {
        let g = cyclic();
        let d = descendants_within(&g, NodeId(1), 3);
        assert!(
            d.contains(&(NodeId(1), 3)),
            "node 1 reaches itself via the 3-cycle: {d:?}"
        );
    }

    #[test]
    fn source_not_on_cycle_absent() {
        let g = cyclic();
        let d = descendants_within(&g, NodeId(0), 10);
        assert!(d.iter().all(|&(n, _)| n != NodeId(0)));
    }

    #[test]
    fn unbounded_reaches_everything() {
        let g = cyclic();
        let d = descendants_within(&g, NodeId(0), u32::MAX);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn ancestors() {
        let g = cyclic();
        let a = ancestors_within(&g, NodeId(4), 1);
        assert_eq!(a, vec![(NodeId(0), 1)]);
        let a = ancestors_within(&g, NodeId(1), 2);
        let mut a: Vec<_> = a.into_iter().map(|(n, k)| (n.0, k)).collect();
        a.sort();
        // preds of 1: 0 (d1), 3 (d1); preds of 3: 2 (d2)
        assert_eq!(a, vec![(0, 1), (2, 2), (3, 1)]);
    }

    #[test]
    fn bounded_distance_pairs() {
        let g = cyclic();
        let mut s = BfsScratch::new(g.node_count());
        assert_eq!(
            bounded_distance(&g, NodeId(0), NodeId(3), 3, &mut s),
            Some(3)
        );
        assert_eq!(bounded_distance(&g, NodeId(0), NodeId(3), 2, &mut s), None);
        assert_eq!(
            bounded_distance(&g, NodeId(1), NodeId(1), 3, &mut s),
            Some(3)
        );
        assert_eq!(bounded_distance(&g, NodeId(4), NodeId(0), 10, &mut s), None);
        assert_eq!(bounded_distance(&g, NodeId(0), NodeId(1), 0, &mut s), None);
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = cyclic();
        let mut s = BfsScratch::new(g.node_count());
        bounded_bfs(&g, NodeId(0), 1, Direction::Out, &mut s);
        assert_eq!(s.visited.len(), 2);
        bounded_bfs(&g, NodeId(4), 5, Direction::Out, &mut s);
        assert!(s.visited.is_empty(), "node 4 has no out-edges");
        assert_eq!(s.distance_of(NodeId(1)), None);
    }

    #[test]
    fn zero_bound_is_empty() {
        let g = cyclic();
        assert!(descendants_within(&g, NodeId(0), 0).is_empty());
    }
}
