//! Graph statistics used by the generators and the benchmark harness.

use crate::graph::DataGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Summary statistics of a [`DataGraph`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges.
    pub edges: usize,
    /// Average out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of distinct labels in use.
    pub labels: usize,
    /// Densification exponent `α` such that `|E| = |V|^α` (0 for empty).
    pub alpha: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn stats(g: &DataGraph) -> GraphStats {
    let n = g.node_count();
    let m = g.edge_count();
    let max_out = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap_or(0);
    let alpha = if n > 1 && m > 0 {
        (m as f64).ln() / (n as f64).ln()
    } else {
        0.0
    };
    GraphStats {
        nodes: n,
        edges: m,
        avg_out_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_out_degree: max_out,
        max_in_degree: max_in,
        labels: g.label_alphabet_size(),
        alpha,
    }
}

/// Histogram of node counts per label name.
pub fn label_histogram(g: &DataGraph) -> HashMap<String, usize> {
    let mut h = HashMap::new();
    for v in g.nodes() {
        for &l in g.labels_of(v) {
            *h.entry(g.label_name(l).to_string()).or_insert(0) += 1;
        }
    }
    h
}

/// Out-degree distribution: `dist[d]` = number of nodes with out-degree `d`.
pub fn out_degree_distribution(g: &DataGraph) -> Vec<usize> {
    let max = g.nodes().map(|v| g.out_degree(v)).max().unwrap_or(0);
    let mut dist = vec![0usize; max + 1];
    for v in g.nodes() {
        dist[g.out_degree(v)] += 1;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> DataGraph {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        let d = b.add_node(["B"]);
        b.add_edge(a, c);
        b.add_edge(a, d);
        b.add_edge(c, d);
        b.build()
    }

    #[test]
    fn basic_stats() {
        let s = stats(&sample());
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.labels, 2);
        assert!((s.avg_out_degree - 1.0).abs() < 1e-9);
        assert!((s.alpha - 1.0).abs() < 1e-9, "|E| = |V|^1 here");
    }

    #[test]
    fn histogram() {
        let h = label_histogram(&sample());
        assert_eq!(h["A"], 1);
        assert_eq!(h["B"], 2);
    }

    #[test]
    fn degree_distribution() {
        let d = out_degree_distribution(&sample());
        assert_eq!(d, vec![1, 1, 1]); // one sink, one deg-1, one deg-2
    }

    #[test]
    fn empty() {
        let g = GraphBuilder::new().build();
        let s = stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.alpha, 0.0);
        assert!(out_degree_distribution(&g).len() == 1);
    }
}
