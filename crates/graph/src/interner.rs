//! String interning.
//!
//! Labels, attribute names and string attribute values are interned per
//! [`DataGraph`](crate::DataGraph) so that all hot-path comparisons during
//! matching are integer comparisons. Pattern queries keep their own strings
//! and resolve them against a graph's interners once per match call.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An interned-string handle. Only meaningful relative to the [`Interner`]
/// that produced it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym(pub u32);

/// A simple append-only string interner.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<Box<str>>,
    #[serde(skip)]
    index: HashMap<Box<str>, Sym>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Sym(self.strings.len() as u32);
        self.strings.push(s.into());
        self.index.insert(s.into(), sym);
        sym
    }

    /// Looks up the symbol for `s` without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.index.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Sym, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), s.as_ref()))
    }

    /// Rebuilds the lookup index (needed after deserialization, which skips
    /// the redundant `index` map).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .strings
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), Sym(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("PM");
        let b = it.intern("DBA");
        let a2 = it.intern("PM");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(a), "PM");
        assert_eq!(it.resolve(b), "DBA");
    }

    #[test]
    fn get_does_not_intern() {
        let mut it = Interner::new();
        assert_eq!(it.get("x"), None);
        let s = it.intern("x");
        assert_eq!(it.get("x"), Some(s));
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut it = Interner::new();
        it.intern("a");
        it.intern("b");
        let v: Vec<&str> = it.iter().map(|(_, s)| s).collect();
        assert_eq!(v, vec!["a", "b"]);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut it = Interner::new();
        it.intern("hello");
        let mut clone = Interner {
            strings: it.strings.clone(),
            index: HashMap::new(),
        };
        assert_eq!(clone.get("hello"), None);
        clone.rebuild_index();
        assert_eq!(clone.get("hello"), Some(Sym(0)));
    }
}
