//! A dense fixed-capacity bitset.
//!
//! Used throughout the workspace for visited sets, candidate sets and
//! reachability frontiers. Implemented from scratch (no external crates) on a
//! `Vec<u64>` backing store.

/// A fixed-capacity set of `usize` indices in `[0, len)` stored as packed bits.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty bitset able to hold indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Creates a bitset with all `len` bits set.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Number of indices this set can hold (not the number of set bits).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`, returning whether it was previously unset.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Clears bit `i`, returning whether it was previously set.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Clears all bits, keeping the capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other` (capacities must match).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: removes every bit set in `other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over set bit indices in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Zeroes any bits beyond `len` (invariant maintenance after `full`).
    fn clear_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a bitset sized to fit the largest index.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(len);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the set bits of a [`BitSet`].
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(67);
        assert_eq!(s.count(), 67);
        assert!(s.contains(66));
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for i in [3usize, 64, 65, 199, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        for i in [1usize, 5, 69] {
            a.insert(i);
        }
        for i in [5usize, 7] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 7, 69]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 69]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        b.insert(1);
        b.insert(69);
        assert!(a.is_subset(&b));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(9);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [4usize, 2, 7].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 4, 7]);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let f = BitSet::full(0);
        assert_eq!(f.count(), 0);
    }
}
