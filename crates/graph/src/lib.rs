//! # gpv-graph — data-graph substrate
//!
//! Directed, node-labeled and node-attributed graphs as defined in Section II-A
//! of *Answering Graph Pattern Queries Using Views* (Fan, Wang, Wu — ICDE 2014):
//! a data graph is `G = (V, E, L)` where `L(v)` is a set of labels drawn from an
//! alphabet, extended here (as the paper explicitly allows) with typed node
//! attributes so that pattern nodes can carry Boolean search conditions such as
//! `C = "Music" && V >= 10000` (paper Fig. 7).
//!
//! The crate provides:
//!
//! * [`DataGraph`] — an immutable CSR (compressed sparse row) representation
//!   with both out- and in-adjacency, interned labels, attribute names and
//!   string attribute values;
//! * [`GraphBuilder`] — the mutable construction API;
//! * [`traverse`] — BFS, bounded BFS (`k`-hop neighbourhoods with distances)
//!   and reachability, the primitives behind bounded simulation;
//! * [`scc`] — iterative Tarjan SCC, condensation DAG and the *rank* function
//!   of Section III used by the bottom-up `MatchJoin` optimization;
//! * [`bitset`] — a dense fixed-size bitset used as the workhorse visited /
//!   candidate-set structure throughout the workspace;
//! * [`io`] — a line-oriented text format for graphs;
//! * [`stats`] — degree / label statistics used by the generators and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod graph;
pub mod interner;
pub mod io;
pub mod scc;
pub mod stats;
pub mod traverse;
pub mod value;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use graph::{DataGraph, EdgeIter, NodeId};
pub use interner::{Interner, Sym};
pub use scc::{Condensation, SccInfo};
pub use value::{AttrId, LabelId, Value, ValueRef};

/// Convenience alias used across the workspace for `(source, target)` edges.
pub type Edge = (NodeId, NodeId);
