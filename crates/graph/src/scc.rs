//! Strongly connected components, condensation and the paper's *rank*
//! function.
//!
//! Section III of the paper defines, for a pattern `Qs`, the SCC graph
//! `G_SCC` obtained by collapsing each strongly connected component into one
//! node, and ranks:
//!
//! * `r(u) = 0` if `s(u)` is a leaf (no outgoing edges) of `G_SCC`;
//! * `r(u) = max { 1 + r(u') | (s(u), s(u')) ∈ E_SCC }` otherwise;
//! * the rank of an edge `e = (u', u)` is `r(u)`.
//!
//! The optimized `MatchJoin` drains its worklist bottom-up in ascending edge
//! rank (Lemma 2). The implementation is an iterative Tarjan (no recursion,
//! safe for large patterns/graphs) generic over any adjacency oracle, so both
//! `DataGraph`s and patterns can use it.

use crate::graph::{DataGraph, NodeId};

/// Result of SCC decomposition over `n` nodes.
#[derive(Clone, Debug)]
pub struct SccInfo {
    /// Component id of each node. Component ids are in *reverse topological*
    /// order of the condensation (sinks get low ids), the order Tarjan emits.
    pub comp_of: Vec<u32>,
    /// Number of components.
    pub comp_count: usize,
    /// Members of each component.
    pub members: Vec<Vec<u32>>,
}

impl SccInfo {
    /// Whether component `c` is a single node without a self-loop (a
    /// "singleton SCC" in the paper's terminology).
    pub fn is_trivial(&self, c: u32, has_self_loop: impl Fn(u32) -> bool) -> bool {
        let m = &self.members[c as usize];
        m.len() == 1 && !has_self_loop(m[0])
    }
}

/// Iterative Tarjan SCC over an arbitrary successor oracle.
///
/// `succ(v)` must yield the successors of node `v` (any order, duplicates
/// allowed). Runs in `O(n + m)`.
pub fn tarjan_scc<I, F>(n: usize, succ: F) -> SccInfo
where
    F: Fn(u32) -> I,
    I: IntoIterator<Item = u32>,
{
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp_of = vec![UNSET; n];
    let mut comp_count = 0usize;
    let mut next_index = 0u32;

    // Explicit DFS stack: (node, iterator over successors).
    enum Frame<It> {
        Enter(u32),
        Resume(u32, It),
    }

    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        let mut call: Vec<Frame<<I as IntoIterator>::IntoIter>> = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    call.push(Frame::Resume(v, succ(v).into_iter()));
                }
                Frame::Resume(v, mut it) => {
                    let mut descended = false;
                    while let Some(w) = it.next() {
                        if index[w as usize] == UNSET {
                            call.push(Frame::Resume(v, it));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w as usize] {
                            lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v as usize] == index[v as usize] {
                        // v is the root of a component.
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w as usize] = false;
                            comp_of[w as usize] = comp_count as u32;
                            if w == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                    // Propagate lowlink to parent (the frame below, if any).
                    if let Some(Frame::Resume(p, _)) = call.last() {
                        let p = *p;
                        lowlink[p as usize] = lowlink[p as usize].min(lowlink[v as usize]);
                    }
                }
            }
        }
    }

    let mut members = vec![Vec::new(); comp_count];
    for v in 0..n as u32 {
        members[comp_of[v as usize] as usize].push(v);
    }
    SccInfo {
        comp_of,
        comp_count,
        members,
    }
}

/// The condensation (SCC DAG) plus node/edge ranks per the paper.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Underlying SCC decomposition.
    pub scc: SccInfo,
    /// Deduplicated condensation edges `(comp, comp)`, excluding self-loops.
    pub edges: Vec<(u32, u32)>,
    /// Rank of each component.
    pub comp_rank: Vec<u32>,
    /// Rank of each node: `r(u) = comp_rank[comp_of(u)]`.
    pub node_rank: Vec<u32>,
}

impl Condensation {
    /// Builds the condensation and ranks from an SCC decomposition and the
    /// original successor oracle.
    pub fn build<I, F>(n: usize, succ: F, scc: SccInfo) -> Self
    where
        F: Fn(u32) -> I,
        I: IntoIterator<Item = u32>,
    {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for v in 0..n as u32 {
            let cv = scc.comp_of[v as usize];
            for w in succ(v) {
                let cw = scc.comp_of[w as usize];
                if cv != cw {
                    edges.push((cv, cw));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();

        // Tarjan emits components in reverse topological order: every
        // successor component of c has an id < c. So a single ascending pass
        // computes ranks bottom-up.
        let mut comp_rank = vec![0u32; scc.comp_count];
        let mut out_of: Vec<Vec<u32>> = vec![Vec::new(); scc.comp_count];
        for &(a, b) in &edges {
            debug_assert!(
                b < a,
                "condensation edge must point to lower (earlier) comp id"
            );
            out_of[a as usize].push(b);
        }
        for c in 0..scc.comp_count {
            comp_rank[c] = out_of[c]
                .iter()
                .map(|&s| comp_rank[s as usize] + 1)
                .max()
                .unwrap_or(0);
        }

        let node_rank = (0..n).map(|v| comp_rank[scc.comp_of[v] as usize]).collect();
        Condensation {
            scc,
            edges,
            comp_rank,
            node_rank,
        }
    }

    /// Rank of node `u`.
    #[inline]
    pub fn rank(&self, u: u32) -> u32 {
        self.node_rank[u as usize]
    }

    /// The paper's edge rank: for `e = (u', u)`, `r(e) = r(u)` (rank of the
    /// target).
    #[inline]
    pub fn edge_rank(&self, _src: u32, dst: u32) -> u32 {
        self.node_rank[dst as usize]
    }
}

/// SCC decomposition of a [`DataGraph`].
pub fn scc_of_graph(g: &DataGraph) -> SccInfo {
    tarjan_scc(g.node_count(), |v| {
        g.out_neighbors(NodeId(v)).iter().map(|n| n.0)
    })
}

/// Condensation + ranks of a [`DataGraph`].
pub fn condensation_of_graph(g: &DataGraph) -> Condensation {
    let scc = scc_of_graph(g);
    Condensation::build(
        g.node_count(),
        |v| g.out_neighbors(NodeId(v)).iter().map(|n| n.0),
        scc,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn adj(edges: &[(u32, u32)], n: usize) -> Vec<Vec<u32>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u as usize].push(v);
        }
        a
    }

    #[test]
    fn dag_is_all_singletons() {
        let a = adj(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let scc = tarjan_scc(4, |v| a[v as usize].iter().copied());
        assert_eq!(scc.comp_count, 4);
        // Distinct components for all.
        let mut ids = scc.comp_of.clone();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn cycle_is_one_component() {
        let a = adj(&[(0, 1), (1, 2), (2, 0), (2, 3)], 4);
        let scc = tarjan_scc(4, |v| a[v as usize].iter().copied());
        assert_eq!(scc.comp_count, 2);
        assert_eq!(scc.comp_of[0], scc.comp_of[1]);
        assert_eq!(scc.comp_of[1], scc.comp_of[2]);
        assert_ne!(scc.comp_of[0], scc.comp_of[3]);
    }

    #[test]
    fn reverse_topological_ids() {
        // 0 -> 1 -> 2 (chain): sink 2 must get the smallest comp id.
        let a = adj(&[(0, 1), (1, 2)], 3);
        let scc = tarjan_scc(3, |v| a[v as usize].iter().copied());
        assert!(scc.comp_of[2] < scc.comp_of[1]);
        assert!(scc.comp_of[1] < scc.comp_of[0]);
    }

    #[test]
    fn ranks_on_dag() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3 (diamond): r(3)=0, r(1)=r(2)=1, r(0)=2.
        let a = adj(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let edges = a.clone();
        let scc = tarjan_scc(4, |v| a[v as usize].iter().copied());
        let c = Condensation::build(4, |v| edges[v as usize].iter().copied(), scc);
        assert_eq!(c.rank(3), 0);
        assert_eq!(c.rank(1), 1);
        assert_eq!(c.rank(2), 1);
        assert_eq!(c.rank(0), 2);
        assert_eq!(c.edge_rank(0, 1), 1);
        assert_eq!(c.edge_rank(1, 3), 0);
    }

    #[test]
    fn ranks_with_cycle() {
        // Paper-style: PM -> DBA <-> PRG (2-cycle). Cycle comp is a leaf of
        // GSCC (rank 0), PM gets rank 1.
        let a = adj(&[(0, 1), (1, 2), (2, 1)], 3);
        let edges = a.clone();
        let scc = tarjan_scc(3, |v| a[v as usize].iter().copied());
        assert_eq!(scc.comp_count, 2);
        let c = Condensation::build(3, |v| edges[v as usize].iter().copied(), scc);
        assert_eq!(c.rank(1), 0);
        assert_eq!(c.rank(2), 0);
        assert_eq!(c.rank(0), 1);
    }

    #[test]
    fn longest_path_rank() {
        // Chain 0->1->2->3 plus shortcut 0->3: rank(0) = 3 (max, not min).
        let a = adj(&[(0, 1), (1, 2), (2, 3), (0, 3)], 4);
        let edges = a.clone();
        let scc = tarjan_scc(4, |v| a[v as usize].iter().copied());
        let c = Condensation::build(4, |v| edges[v as usize].iter().copied(), scc);
        assert_eq!(c.rank(0), 3);
    }

    #[test]
    fn trivial_vs_self_loop() {
        let a = adj(&[(0, 0), (1, 2)], 3);
        let scc = tarjan_scc(3, |v| a[v as usize].iter().copied());
        assert_eq!(scc.comp_count, 3);
        let has_loop = |v: u32| v == 0;
        let c0 = scc.comp_of[0];
        let c1 = scc.comp_of[1];
        assert!(!scc.is_trivial(c0, has_loop), "self-loop is non-trivial");
        assert!(scc.is_trivial(c1, has_loop));
    }

    #[test]
    fn graph_wrappers() {
        let mut b = GraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_unlabeled_node()).collect();
        b.add_edge(n[0], n[1]);
        b.add_edge(n[1], n[2]);
        b.add_edge(n[2], n[1]);
        b.add_edge(n[2], n[3]);
        let g = b.build();
        let c = condensation_of_graph(&g);
        assert_eq!(c.scc.comp_count, 3);
        assert_eq!(c.rank(3), 0);
        assert_eq!(c.rank(1), 1);
        assert_eq!(c.rank(2), 1);
        assert_eq!(c.rank(0), 2);
    }

    #[test]
    fn deep_graph_no_stack_overflow() {
        // A 200k-node chain would blow a recursive Tarjan.
        let n = 200_000u32;
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..n).map(|_| b.add_unlabeled_node()).collect();
        for i in 0..(n - 1) as usize {
            b.add_edge(nodes[i], nodes[i + 1]);
        }
        let g = b.build();
        let scc = scc_of_graph(&g);
        assert_eq!(scc.comp_count, n as usize);
    }
}
