//! Mutable construction API for [`DataGraph`].

use crate::graph::{DataGraph, NodeId};
use crate::interner::Interner;
use crate::value::{AttrId, LabelId, StoredValue, Value};

/// Builds a [`DataGraph`] incrementally, then freezes it into CSR form.
///
/// ```
/// use gpv_graph::{GraphBuilder, Value};
///
/// let mut b = GraphBuilder::new();
/// let pm = b.add_node(["PM"]);
/// let dba = b.add_node(["DBA"]);
/// b.set_attr(pm, "name", Value::str("Bob"));
/// b.add_edge(pm, dba);
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert!(g.has_edge(pm, dba));
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Interner,
    attr_names: Interner,
    values: Interner,
    node_labels: Vec<Vec<LabelId>>,
    node_attrs: Vec<Vec<(AttrId, StoredValue)>>,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with node and edge capacity reserved.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let mut b = Self::new();
        b.node_labels.reserve(nodes);
        b.node_attrs.reserve(nodes);
        b.edges.reserve(edges);
        b
    }

    /// Adds a node carrying the given labels; returns its id.
    pub fn add_node<'a, I>(&mut self, labels: I) -> NodeId
    where
        I: IntoIterator<Item = &'a str>,
    {
        let id = NodeId(self.node_labels.len() as u32);
        let mut ls: Vec<LabelId> = labels
            .into_iter()
            .map(|s| LabelId::from(self.labels.intern(s)))
            .collect();
        ls.sort_unstable();
        ls.dedup();
        self.node_labels.push(ls);
        self.node_attrs.push(Vec::new());
        id
    }

    /// Adds an unlabeled node.
    pub fn add_unlabeled_node(&mut self) -> NodeId {
        self.add_node(std::iter::empty())
    }

    /// Adds `label` to an existing node.
    pub fn add_label(&mut self, v: NodeId, label: &str) {
        let l = LabelId::from(self.labels.intern(label));
        let ls = &mut self.node_labels[v.index()];
        if let Err(pos) = ls.binary_search(&l) {
            ls.insert(pos, l);
        }
    }

    /// Sets attribute `name` of node `v` to `value`, replacing any previous
    /// value.
    pub fn set_attr(&mut self, v: NodeId, name: &str, value: Value) {
        let a = AttrId::from(self.attr_names.intern(name));
        let stored = match value {
            Value::Int(i) => StoredValue::Int(i),
            Value::Str(s) => StoredValue::Sym(self.values.intern(&s)),
        };
        let attrs = &mut self.node_attrs[v.index()];
        match attrs.binary_search_by_key(&a, |&(id, _)| id) {
            Ok(i) => attrs[i].1 = stored,
            Err(i) => attrs.insert(i, (a, stored)),
        }
    }

    /// Adds the directed edge `(u, v)`. Duplicate edges are deduplicated at
    /// [`build`](Self::build) time; self-loops are allowed.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(
            u.index() < self.node_labels.len(),
            "edge source out of range"
        );
        debug_assert!(
            v.index() < self.node_labels.len(),
            "edge target out of range"
        );
        self.edges.push((u.0, v.0));
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of edges added so far (before deduplication).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable CSR [`DataGraph`].
    pub fn build(mut self) -> DataGraph {
        let n = self.node_labels.len();

        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();

        // Out-CSR (edges are sorted by source, then target).
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| NodeId(v)).collect();

        // In-CSR via counting sort by target.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); m];
        for &(u, v) in &self.edges {
            let c = &mut cursor[v as usize];
            in_sources[*c as usize] = NodeId(u);
            *c += 1;
        }
        // Sources arrive in ascending order because `edges` is sorted by
        // source, so each in-adjacency list is already sorted.

        // Label CSR.
        let mut label_offsets = Vec::with_capacity(n + 1);
        label_offsets.push(0u32);
        let mut label_data = Vec::new();
        for ls in &self.node_labels {
            label_data.extend_from_slice(ls);
            label_offsets.push(label_data.len() as u32);
        }

        // Attribute CSR.
        let mut attr_offsets = Vec::with_capacity(n + 1);
        attr_offsets.push(0u32);
        let mut attr_data = Vec::new();
        for attrs in &self.node_attrs {
            attr_data.extend_from_slice(attrs);
            attr_offsets.push(attr_data.len() as u32);
        }

        DataGraph {
            labels: self.labels,
            attr_names: self.attr_names,
            values: self.values,
            label_offsets,
            label_data,
            attr_offsets,
            attr_data,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_edges() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        b.add_edge(a, c);
        b.add_edge(a, c);
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        b.add_edge(a, a);
        let g = b.build();
        assert!(g.has_edge(a, a));
        assert_eq!(g.out_neighbors(a), &[a]);
        assert_eq!(g.in_neighbors(a), &[a]);
    }

    #[test]
    fn in_adjacency_sorted() {
        let mut b = GraphBuilder::new();
        let nodes: Vec<_> = (0..5).map(|_| b.add_unlabeled_node()).collect();
        // Many edges into node 4, added out of order.
        b.add_edge(nodes[3], nodes[4]);
        b.add_edge(nodes[0], nodes[4]);
        b.add_edge(nodes[2], nodes[4]);
        b.add_edge(nodes[1], nodes[4]);
        let g = b.build();
        let ins = g.in_neighbors(nodes[4]).to_vec();
        let mut sorted = ins.clone();
        sorted.sort();
        assert_eq!(ins, sorted);
        assert_eq!(ins.len(), 4);
    }

    #[test]
    fn labels_dedup_and_sorted() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["B", "A", "B"]);
        let g = b.build();
        let names: Vec<&str> = g.labels_of(v).iter().map(|&l| g.label_name(l)).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"A") && names.contains(&"B"));
    }

    #[test]
    fn add_label_later() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["A"]);
        b.add_label(v, "C");
        b.add_label(v, "C");
        let g = b.build();
        assert_eq!(g.labels_of(v).len(), 2);
        assert!(g.has_label(v, g.lookup_label("C").unwrap()));
    }

    #[test]
    fn set_attr_replaces() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["A"]);
        b.set_attr(v, "x", Value::int(1));
        b.set_attr(v, "x", Value::int(2));
        let g = b.build();
        assert_eq!(g.attr_int(v, g.lookup_attr("x").unwrap()), Some(2));
    }

    #[test]
    fn with_capacity_builds_same() {
        let mut b = GraphBuilder::with_capacity(10, 10);
        let a = b.add_node(["A"]);
        let c = b.add_node(["B"]);
        b.add_edge(a, c);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
