//! The immutable [`DataGraph`] and its CSR adjacency.

use crate::interner::{Interner, Sym};
use crate::value::{AttrId, LabelId, StoredValue, ValueRef};
use serde::{Deserialize, Serialize};

/// A node identifier: a dense index in `0..node_count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed data graph `G = (V, E, L)` with interned labels and typed node
/// attributes, stored in CSR form with both out- and in-adjacency.
///
/// Construct with [`GraphBuilder`](crate::GraphBuilder). The representation is
/// immutable after construction; all per-node queries are `O(1)` slice
/// lookups and `has_edge` is a binary search over the sorted out-adjacency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataGraph {
    pub(crate) labels: Interner,
    pub(crate) attr_names: Interner,
    pub(crate) values: Interner,

    pub(crate) label_offsets: Vec<u32>,
    pub(crate) label_data: Vec<LabelId>,

    pub(crate) attr_offsets: Vec<u32>,
    pub(crate) attr_data: Vec<(AttrId, StoredValue)>,

    pub(crate) out_offsets: Vec<u32>,
    pub(crate) out_targets: Vec<NodeId>,
    pub(crate) in_offsets: Vec<u32>,
    pub(crate) in_sources: Vec<NodeId>,
}

impl DataGraph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// The paper's size measure `|G|`: number of nodes plus edges.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// Iterates all node ids `0..|V|`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Out-neighbours of `v` (sorted ascending).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = (
            self.out_offsets[v.index()] as usize,
            self.out_offsets[v.index() + 1] as usize,
        );
        &self.out_targets[s..e]
    }

    /// In-neighbours of `v` (sorted ascending).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let (s, e) = (
            self.in_offsets[v.index()] as usize,
            self.in_offsets[v.index() + 1] as usize,
        );
        &self.in_sources[s..e]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Whether the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates all edges `(u, v)` in CSR order.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter {
            graph: self,
            node: 0,
            pos: 0,
        }
    }

    /// Labels of node `v` (sorted ascending).
    #[inline]
    pub fn labels_of(&self, v: NodeId) -> &[LabelId] {
        let (s, e) = (
            self.label_offsets[v.index()] as usize,
            self.label_offsets[v.index() + 1] as usize,
        );
        &self.label_data[s..e]
    }

    /// Whether `l ∈ L(v)`, the paper's node-label test.
    #[inline]
    pub fn has_label(&self, v: NodeId, l: LabelId) -> bool {
        self.labels_of(v).binary_search(&l).is_ok()
    }

    /// The attribute value of `v` under attribute `a`, if set.
    pub fn attr(&self, v: NodeId, a: AttrId) -> Option<ValueRef<'_>> {
        let (s, e) = (
            self.attr_offsets[v.index()] as usize,
            self.attr_offsets[v.index() + 1] as usize,
        );
        let attrs = &self.attr_data[s..e];
        let i = attrs.binary_search_by_key(&a, |&(id, _)| id).ok()?;
        Some(match attrs[i].1 {
            StoredValue::Int(x) => ValueRef::Int(x),
            StoredValue::Sym(s) => ValueRef::Str(self.values.resolve(s)),
        })
    }

    /// Raw stored attribute value (interned form), for hot-path comparisons.
    #[inline]
    pub(crate) fn attr_stored(&self, v: NodeId, a: AttrId) -> Option<StoredValue> {
        let (s, e) = (
            self.attr_offsets[v.index()] as usize,
            self.attr_offsets[v.index() + 1] as usize,
        );
        let attrs = &self.attr_data[s..e];
        let i = attrs.binary_search_by_key(&a, |&(id, _)| id).ok()?;
        Some(attrs[i].1)
    }

    /// Hot-path attribute comparison against an interned string value.
    ///
    /// Returns `None` when the attribute is absent, `Some(result)` otherwise.
    /// String attributes compare by symbol equality; integer attributes never
    /// equal a string value.
    #[inline]
    pub fn attr_str_eq(&self, v: NodeId, a: AttrId, value_sym: Sym) -> Option<bool> {
        Some(match self.attr_stored(v, a)? {
            StoredValue::Sym(s) => s == value_sym,
            StoredValue::Int(_) => false,
        })
    }

    /// Hot-path integer attribute read (`None` if absent or non-integer).
    #[inline]
    pub fn attr_int(&self, v: NodeId, a: AttrId) -> Option<i64> {
        match self.attr_stored(v, a)? {
            StoredValue::Int(x) => Some(x),
            StoredValue::Sym(_) => None,
        }
    }

    /// Iterates the attributes of node `v` as `(id, value)` pairs.
    pub fn attrs_of(&self, v: NodeId) -> impl Iterator<Item = (AttrId, ValueRef<'_>)> + '_ {
        let (s, e) = (
            self.attr_offsets[v.index()] as usize,
            self.attr_offsets[v.index() + 1] as usize,
        );
        self.attr_data[s..e].iter().map(|&(aid, stored)| {
            let val = match stored {
                StoredValue::Int(x) => ValueRef::Int(x),
                StoredValue::Sym(sym) => ValueRef::Str(self.values.resolve(sym)),
            };
            (aid, val)
        })
    }

    /// Resolves a label name against this graph's alphabet.
    pub fn lookup_label(&self, name: &str) -> Option<LabelId> {
        self.labels.get(name).map(LabelId::from)
    }

    /// Resolves an attribute name.
    pub fn lookup_attr(&self, name: &str) -> Option<AttrId> {
        self.attr_names.get(name).map(AttrId::from)
    }

    /// Resolves a string attribute value to its interned symbol.
    pub fn lookup_value(&self, s: &str) -> Option<Sym> {
        self.values.get(s)
    }

    /// Resolves a label id back to its name.
    pub fn label_name(&self, l: LabelId) -> &str {
        self.labels.resolve(l.into())
    }

    /// Resolves an attribute id back to its name.
    pub fn attr_name(&self, a: AttrId) -> &str {
        self.attr_names.resolve(a.into())
    }

    /// Number of distinct labels in the alphabet Σ.
    pub fn label_alphabet_size(&self) -> usize {
        self.labels.len()
    }

    /// Rebuilds interner lookup indices after deserialization.
    pub fn rebuild_indices(&mut self) {
        self.labels.rebuild_index();
        self.attr_names.rebuild_index();
        self.values.rebuild_index();
    }

    /// Builds a new graph over the **same node set** (labels, attributes,
    /// interned alphabets all shared by clone) but with `edges` as the full
    /// edge list. Duplicate edges are dropped; out- and in-adjacency are
    /// rebuilt sorted, so the result satisfies every CSR invariant of a
    /// [`GraphBuilder`](crate::GraphBuilder)-constructed graph.
    ///
    /// This is the substrate for edge-delta application: the serving layers
    /// treat `DataGraph` as immutable, so an update batch produces a new
    /// version rather than mutating in place.
    ///
    /// # Panics
    ///
    /// In debug builds, if any endpoint is `>= node_count()`. Callers that
    /// accept untrusted deltas must validate ids first.
    pub fn with_edges(&self, edges: &[(NodeId, NodeId)]) -> DataGraph {
        let n = self.node_count();
        let mut sorted: Vec<(NodeId, NodeId)> = edges.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, v) in &sorted {
            debug_assert!(u.index() < n && v.index() < n, "edge endpoint out of range");
            out_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let out_targets: Vec<NodeId> = sorted.iter().map(|&(_, v)| v).collect();

        // In-CSR by counting sort over targets; sources come out sorted
        // because the edge list is sorted by (source, target).
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v) in &sorted {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); sorted.len()];
        for &(u, v) in &sorted {
            let slot = cursor[v.index()] as usize;
            in_sources[slot] = u;
            cursor[v.index()] += 1;
        }

        DataGraph {
            labels: self.labels.clone(),
            attr_names: self.attr_names.clone(),
            values: self.values.clone(),
            label_offsets: self.label_offsets.clone(),
            label_data: self.label_data.clone(),
            attr_offsets: self.attr_offsets.clone(),
            attr_data: self.attr_data.clone(),
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }
}

/// Iterator over all edges of a [`DataGraph`].
pub struct EdgeIter<'a> {
    graph: &'a DataGraph,
    node: u32,
    pos: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        let n = self.graph.node_count() as u32;
        while self.node < n {
            let end = self.graph.out_offsets[self.node as usize + 1] as usize;
            if self.pos < end {
                let e = (NodeId(self.node), self.graph.out_targets[self.pos]);
                self.pos += 1;
                return Some(e);
            }
            self.node += 1;
            if self.node < n {
                self.pos = self.graph.out_offsets[self.node as usize] as usize;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::value::Value;
    use crate::NodeId;

    fn diamond() -> crate::DataGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new();
        let a = b.add_node(["A"]);
        let x = b.add_node(["B"]);
        let y = b.add_node(["B", "C"]);
        let z = b.add_node(["D"]);
        b.add_edge(a, x);
        b.add_edge(a, y);
        b.add_edge(x, z);
        b.add_edge(y, z);
        b.build()
    }

    #[test]
    fn counts_and_adjacency() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.size(), 8);
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.in_neighbors(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn has_edge_and_edge_iter() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(NodeId(1), NodeId(3))));
    }

    #[test]
    fn labels() {
        let g = diamond();
        let b_label = g.lookup_label("B").unwrap();
        let c = g.lookup_label("C").unwrap();
        assert!(g.has_label(NodeId(1), b_label));
        assert!(g.has_label(NodeId(2), b_label));
        assert!(g.has_label(NodeId(2), c));
        assert!(!g.has_label(NodeId(1), c));
        assert_eq!(g.label_name(b_label), "B");
        assert_eq!(g.lookup_label("Z"), None);
        assert_eq!(g.label_alphabet_size(), 4);
    }

    #[test]
    fn attributes() {
        let mut b = GraphBuilder::new();
        let v = b.add_node(["video"]);
        b.set_attr(v, "category", Value::str("Music"));
        b.set_attr(v, "visits", Value::int(10_000));
        let w = b.add_node(["video"]);
        b.set_attr(w, "category", Value::str("Sports"));
        let g = b.build();

        let cat = g.lookup_attr("category").unwrap();
        let visits = g.lookup_attr("visits").unwrap();
        assert_eq!(g.attr(v, cat), Some(crate::ValueRef::Str("Music")));
        assert_eq!(g.attr_int(v, visits), Some(10_000));
        assert_eq!(g.attr_int(w, visits), None);
        let music = g.lookup_value("Music").unwrap();
        assert_eq!(g.attr_str_eq(v, cat, music), Some(true));
        assert_eq!(g.attr_str_eq(w, cat, music), Some(false));
        assert_eq!(g.attr_name(cat), "category");
    }

    #[test]
    fn with_edges_rebuilds_adjacency_and_keeps_labels() {
        let g = diamond();
        // Drop 0->1, add 3->0 (out of CSR order, plus a duplicate).
        let edges = vec![
            (NodeId(3), NodeId(0)),
            (NodeId(0), NodeId(2)),
            (NodeId(1), NodeId(3)),
            (NodeId(2), NodeId(3)),
            (NodeId(3), NodeId(0)),
        ];
        let h = g.with_edges(&edges);
        assert_eq!(h.node_count(), 4);
        assert_eq!(h.edge_count(), 4, "duplicate edge deduped");
        assert!(!h.has_edge(NodeId(0), NodeId(1)));
        assert!(h.has_edge(NodeId(3), NodeId(0)));
        assert_eq!(h.in_neighbors(NodeId(0)), &[NodeId(3)]);
        assert_eq!(h.out_neighbors(NodeId(0)), &[NodeId(2)]);
        // Node data is untouched.
        let b_label = h.lookup_label("B").unwrap();
        assert!(h.has_label(NodeId(1), b_label));
        assert_eq!(h.label_alphabet_size(), g.label_alphabet_size());
        // The original graph is unchanged (immutability preserved).
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.nodes().count(), 0);
    }
}
