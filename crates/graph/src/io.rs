//! Line-oriented text I/O for data graphs.
//!
//! Format (one record per line, `#` comments and blank lines ignored):
//!
//! ```text
//! node <id> [label1,label2,...] [key=value ...]
//! edge <src> <dst>
//! ```
//!
//! Node ids must be dense `0..n` but may appear in any order; `-` denotes an
//! empty label set. Values are parsed as `i64` when possible, strings
//! otherwise (quote with `"` to force a string or embed spaces).

use crate::builder::GraphBuilder;
use crate::graph::{DataGraph, NodeId};
use crate::value::Value;
use std::fmt::Write as _;

/// Errors produced while parsing the text graph format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line whose first token is neither `node` nor `edge`.
    UnknownRecord(usize, String),
    /// A malformed record (missing/invalid fields).
    Malformed(usize, String),
    /// Node ids are not dense `0..n`.
    NonDenseIds,
    /// An edge references a node id that was never declared.
    DanglingEdge(usize, u32),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::UnknownRecord(l, s) => write!(f, "line {l}: unknown record kind `{s}`"),
            ParseError::Malformed(l, s) => write!(f, "line {l}: malformed record: {s}"),
            ParseError::NonDenseIds => write!(f, "node ids are not dense 0..n"),
            ParseError::DanglingEdge(l, id) => {
                write!(f, "line {l}: edge references undeclared node {id}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses a graph from the text format.
pub fn parse_graph(text: &str) -> Result<DataGraph, ParseError> {
    struct NodeDecl {
        labels: Vec<String>,
        attrs: Vec<(String, Value)>,
    }
    let mut decls: Vec<Option<NodeDecl>> = Vec::new();
    let mut edges: Vec<(usize, u32, u32)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = tokenize(line);
        let kind = tokens.next().unwrap_or_default();
        match kind.as_str() {
            "node" => {
                let id: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno + 1, raw.to_string()))?;
                let label_tok = tokens.next().unwrap_or_else(|| "-".to_string());
                let labels: Vec<String> = if label_tok == "-" {
                    Vec::new()
                } else {
                    label_tok.split(',').map(str::to_string).collect()
                };
                let mut attrs = Vec::new();
                for t in tokens {
                    let (k, v) = t
                        .split_once('=')
                        .ok_or_else(|| ParseError::Malformed(lineno + 1, raw.to_string()))?;
                    let value = match v.parse::<i64>() {
                        Ok(i) => Value::Int(i),
                        Err(_) => Value::Str(v.trim_matches('"').to_string()),
                    };
                    attrs.push((k.to_string(), value));
                }
                if decls.len() <= id {
                    decls.resize_with(id + 1, || None);
                }
                decls[id] = Some(NodeDecl { labels, attrs });
            }
            "edge" => {
                let u: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno + 1, raw.to_string()))?;
                let v: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ParseError::Malformed(lineno + 1, raw.to_string()))?;
                edges.push((lineno + 1, u, v));
            }
            other => return Err(ParseError::UnknownRecord(lineno + 1, other.to_string())),
        }
    }

    let mut b = GraphBuilder::with_capacity(decls.len(), edges.len());
    for d in &decls {
        let d = d.as_ref().ok_or(ParseError::NonDenseIds)?;
        let v = b.add_node(d.labels.iter().map(String::as_str));
        for (k, val) in &d.attrs {
            b.set_attr(v, k, val.clone());
        }
    }
    let n = decls.len() as u32;
    for (line, u, v) in edges {
        if u >= n {
            return Err(ParseError::DanglingEdge(line, u));
        }
        if v >= n {
            return Err(ParseError::DanglingEdge(line, v));
        }
        b.add_edge(NodeId(u), NodeId(v));
    }
    Ok(b.build())
}

/// Serializes a graph to the text format (round-trips through
/// [`parse_graph`]).
pub fn write_graph(g: &DataGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} nodes, {} edges", g.node_count(), g.edge_count());
    for v in g.nodes() {
        let labels = g.labels_of(v);
        let label_str = if labels.is_empty() {
            "-".to_string()
        } else {
            labels
                .iter()
                .map(|&l| g.label_name(l))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = write!(out, "node {} {}", v.0, label_str);
        let (s, e) = (
            g.attr_offsets[v.index()] as usize,
            g.attr_offsets[v.index() + 1] as usize,
        );
        for &(aid, _) in &g.attr_data[s..e] {
            match g.attr(v, aid).expect("attr present by construction") {
                crate::ValueRef::Int(i) => {
                    let _ = write!(out, " {}={}", g.attr_name(aid), i);
                }
                crate::ValueRef::Str(st) => {
                    if st.contains(' ') {
                        let _ = write!(out, " {}=\"{}\"", g.attr_name(aid), st);
                    } else {
                        let _ = write!(out, " {}={}", g.attr_name(aid), st);
                    }
                }
            }
        }
        out.push('\n');
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "edge {} {}", u.0, v.0);
    }
    out
}

/// Splits a line into whitespace-separated tokens, honouring `"` quoting for
/// attribute values (quotes only matter after a `=`).
fn tokenize(line: &str) -> impl Iterator<Item = String> + '_ {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut in_quote = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            c if c.is_whitespace() && !in_quote => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens.into_iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::ValueRef;

    #[test]
    fn parse_basic() {
        let g = parse_graph(
            "# comment\n\
             node 0 PM name=Bob\n\
             node 1 DBA,Senior rank=3\n\
             edge 0 1\n",
        )
        .unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_label(NodeId(1), g.lookup_label("Senior").unwrap()));
        assert_eq!(
            g.attr(NodeId(0), g.lookup_attr("name").unwrap()),
            Some(ValueRef::Str("Bob"))
        );
        assert_eq!(
            g.attr_int(NodeId(1), g.lookup_attr("rank").unwrap()),
            Some(3)
        );
    }

    #[test]
    fn parse_quoted_value_with_space() {
        let g = parse_graph("node 0 V title=\"Hello World\"\n").unwrap();
        assert_eq!(
            g.attr(NodeId(0), g.lookup_attr("title").unwrap()),
            Some(ValueRef::Str("Hello World"))
        );
    }

    #[test]
    fn parse_unlabeled() {
        let g = parse_graph("node 0 -\nnode 1 -\nedge 0 1\n").unwrap();
        assert!(g.labels_of(NodeId(0)).is_empty());
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse_graph("blah 0\n"),
            Err(ParseError::UnknownRecord(1, _))
        ));
        assert!(matches!(
            parse_graph("node zero A\n"),
            Err(ParseError::Malformed(1, _))
        ));
        assert!(matches!(
            parse_graph("node 0 A\nedge 0 5\n"),
            Err(ParseError::DanglingEdge(2, 5))
        ));
        assert!(matches!(
            parse_graph("node 1 A\n"),
            Err(ParseError::NonDenseIds)
        ));
    }

    #[test]
    fn roundtrip() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(["PM"]);
        let c = b.add_node(["DBA", "BA"]);
        let d = b.add_unlabeled_node();
        b.set_attr(a, "name", Value::str("Walt Smith"));
        b.set_attr(a, "age", Value::int(44));
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(d, a);
        let g = b.build();

        let text = write_graph(&g);
        let g2 = parse_graph(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(
            g2.attr(a, g2.lookup_attr("name").unwrap()),
            Some(ValueRef::Str("Walt Smith"))
        );
        assert_eq!(g2.attr_int(a, g2.lookup_attr("age").unwrap()), Some(44));
        let edges1: Vec<_> = g.edges().collect();
        let edges2: Vec<_> = g2.edges().collect();
        assert_eq!(edges1, edges2);
    }
}
