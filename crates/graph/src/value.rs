//! Typed identifiers and attribute values.

use crate::interner::Sym;
use serde::{Deserialize, Serialize};

/// A node label, interned in a graph's label table.
///
/// The paper's data model gives every node a *set* of labels `L(v)` from an
/// alphabet Σ; a pattern node's condition `fv(u) ∈ L(v)` then reduces to a
/// `LabelId` membership test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LabelId(pub u32);

/// An attribute name, interned in a graph's attribute-name table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u32);

impl From<Sym> for LabelId {
    fn from(s: Sym) -> Self {
        LabelId(s.0)
    }
}

impl From<Sym> for AttrId {
    fn from(s: Sym) -> Self {
        AttrId(s.0)
    }
}

impl From<LabelId> for Sym {
    fn from(l: LabelId) -> Self {
        Sym(l.0)
    }
}

impl From<AttrId> for Sym {
    fn from(a: AttrId) -> Self {
        Sym(a.0)
    }
}

/// An owned attribute value, used when *building* graphs and in pattern
/// predicates (paper Fig. 7: `age`, `rate`, `visits`, `category`, ...).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (covers counts, years, ranks, rates).
    Int(i64),
    /// UTF-8 string (categories, titles, venues, job titles).
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A borrowed view of a stored attribute value, as returned by
/// [`DataGraph::attr`](crate::DataGraph::attr).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueRef<'a> {
    /// Integer value.
    Int(i64),
    /// String value (resolved from the graph's value interner).
    Str(&'a str),
}

impl ValueRef<'_> {
    /// Converts to an owned [`Value`].
    pub fn to_owned_value(self) -> Value {
        match self {
            ValueRef::Int(i) => Value::Int(i),
            ValueRef::Str(s) => Value::Str(s.to_string()),
        }
    }
}

/// Internal storage form of an attribute value: string payloads are interned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum StoredValue {
    Int(i64),
    Sym(Sym),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::str("y"), Value::Str("y".into()));
        assert_eq!(Value::int(-1), Value::Int(-1));
    }

    #[test]
    fn value_ref_roundtrip() {
        assert_eq!(ValueRef::Int(7).to_owned_value(), Value::Int(7));
        assert_eq!(ValueRef::Str("a").to_owned_value(), Value::str("a"));
    }

    #[test]
    fn id_sym_roundtrip() {
        let l = LabelId(5);
        let s: Sym = l.into();
        assert_eq!(LabelId::from(s), l);
        let a = AttrId(9);
        let s: Sym = a.into();
        assert_eq!(AttrId::from(s), a);
    }
}
