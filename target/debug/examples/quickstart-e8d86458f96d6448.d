/root/repo/target/debug/examples/quickstart-e8d86458f96d6448.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-e8d86458f96d6448.rmeta: examples/quickstart.rs

examples/quickstart.rs:
