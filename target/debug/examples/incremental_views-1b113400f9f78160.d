/root/repo/target/debug/examples/incremental_views-1b113400f9f78160.d: examples/incremental_views.rs Cargo.toml

/root/repo/target/debug/examples/libincremental_views-1b113400f9f78160.rmeta: examples/incremental_views.rs Cargo.toml

examples/incremental_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
