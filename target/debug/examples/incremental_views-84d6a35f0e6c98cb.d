/root/repo/target/debug/examples/incremental_views-84d6a35f0e6c98cb.d: examples/incremental_views.rs

/root/repo/target/debug/examples/libincremental_views-84d6a35f0e6c98cb.rmeta: examples/incremental_views.rs

examples/incremental_views.rs:
