/root/repo/target/debug/examples/team_recommendation-7eb85774b0945dc5.d: examples/team_recommendation.rs Cargo.toml

/root/repo/target/debug/examples/libteam_recommendation-7eb85774b0945dc5.rmeta: examples/team_recommendation.rs Cargo.toml

examples/team_recommendation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
