/root/repo/target/debug/examples/youtube_bounded-f80b8d8038e06955.d: examples/youtube_bounded.rs

/root/repo/target/debug/examples/libyoutube_bounded-f80b8d8038e06955.rmeta: examples/youtube_bounded.rs

examples/youtube_bounded.rs:
