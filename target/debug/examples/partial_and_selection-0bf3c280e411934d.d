/root/repo/target/debug/examples/partial_and_selection-0bf3c280e411934d.d: examples/partial_and_selection.rs

/root/repo/target/debug/examples/libpartial_and_selection-0bf3c280e411934d.rmeta: examples/partial_and_selection.rs

examples/partial_and_selection.rs:
