/root/repo/target/debug/examples/team_recommendation-69bf38ece0e0c6c3.d: examples/team_recommendation.rs

/root/repo/target/debug/examples/libteam_recommendation-69bf38ece0e0c6c3.rmeta: examples/team_recommendation.rs

examples/team_recommendation.rs:
