/root/repo/target/debug/examples/incremental_views-e0070eb0070b1551.d: examples/incremental_views.rs

/root/repo/target/debug/examples/incremental_views-e0070eb0070b1551: examples/incremental_views.rs

examples/incremental_views.rs:
