/root/repo/target/debug/examples/youtube_bounded-c658e320c25817bc.d: examples/youtube_bounded.rs Cargo.toml

/root/repo/target/debug/examples/libyoutube_bounded-c658e320c25817bc.rmeta: examples/youtube_bounded.rs Cargo.toml

examples/youtube_bounded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
