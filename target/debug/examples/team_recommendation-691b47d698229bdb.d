/root/repo/target/debug/examples/team_recommendation-691b47d698229bdb.d: examples/team_recommendation.rs

/root/repo/target/debug/examples/team_recommendation-691b47d698229bdb: examples/team_recommendation.rs

examples/team_recommendation.rs:
