/root/repo/target/debug/examples/quickstart-0989299c7895381d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0989299c7895381d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
