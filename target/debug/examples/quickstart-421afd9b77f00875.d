/root/repo/target/debug/examples/quickstart-421afd9b77f00875.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-421afd9b77f00875: examples/quickstart.rs

examples/quickstart.rs:
