/root/repo/target/debug/examples/youtube_bounded-61e256d8455ea593.d: examples/youtube_bounded.rs

/root/repo/target/debug/examples/youtube_bounded-61e256d8455ea593: examples/youtube_bounded.rs

examples/youtube_bounded.rs:
