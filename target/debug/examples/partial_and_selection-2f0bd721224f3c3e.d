/root/repo/target/debug/examples/partial_and_selection-2f0bd721224f3c3e.d: examples/partial_and_selection.rs Cargo.toml

/root/repo/target/debug/examples/libpartial_and_selection-2f0bd721224f3c3e.rmeta: examples/partial_and_selection.rs Cargo.toml

examples/partial_and_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
