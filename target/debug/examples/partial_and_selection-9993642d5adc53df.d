/root/repo/target/debug/examples/partial_and_selection-9993642d5adc53df.d: examples/partial_and_selection.rs

/root/repo/target/debug/examples/partial_and_selection-9993642d5adc53df: examples/partial_and_selection.rs

examples/partial_and_selection.rs:
