/root/repo/target/debug/libproptest.rlib: /root/repo/shims/proptest/src/collection.rs /root/repo/shims/proptest/src/lib.rs /root/repo/shims/rand/src/lib.rs
