/root/repo/target/debug/libserde_json.rlib: /root/repo/shims/serde/src/lib.rs /root/repo/shims/serde/src/value.rs /root/repo/shims/serde_derive/src/lib.rs /root/repo/shims/serde_json/src/lib.rs
