/root/repo/target/debug/deps/fig8a-105de82168868f7c.d: crates/bench/benches/fig8a.rs Cargo.toml

/root/repo/target/debug/deps/libfig8a-105de82168868f7c.rmeta: crates/bench/benches/fig8a.rs Cargo.toml

crates/bench/benches/fig8a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
