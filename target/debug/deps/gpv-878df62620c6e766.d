/root/repo/target/debug/deps/gpv-878df62620c6e766.d: src/bin/gpv.rs Cargo.toml

/root/repo/target/debug/deps/libgpv-878df62620c6e766.rmeta: src/bin/gpv.rs Cargo.toml

src/bin/gpv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
