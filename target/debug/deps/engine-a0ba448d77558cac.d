/root/repo/target/debug/deps/engine-a0ba448d77558cac.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/libengine-a0ba448d77558cac.rmeta: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
