/root/repo/target/debug/deps/maintenance-645dfcb3a568b066.d: tests/maintenance.rs

/root/repo/target/debug/deps/maintenance-645dfcb3a568b066: tests/maintenance.rs

tests/maintenance.rs:
