/root/repo/target/debug/deps/proptest-a011d97ea103e009.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a011d97ea103e009.rmeta: shims/proptest/src/lib.rs shims/proptest/src/collection.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
