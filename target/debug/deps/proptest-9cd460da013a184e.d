/root/repo/target/debug/deps/proptest-9cd460da013a184e.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-9cd460da013a184e.rlib: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-9cd460da013a184e.rmeta: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
