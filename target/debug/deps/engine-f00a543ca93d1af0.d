/root/repo/target/debug/deps/engine-f00a543ca93d1af0.d: tests/engine.rs

/root/repo/target/debug/deps/engine-f00a543ca93d1af0: tests/engine.rs

tests/engine.rs:
