/root/repo/target/debug/deps/criterion-704b4d16f6f2ce94.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-704b4d16f6f2ce94.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
