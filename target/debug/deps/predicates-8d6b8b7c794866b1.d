/root/repo/target/debug/deps/predicates-8d6b8b7c794866b1.d: tests/predicates.rs Cargo.toml

/root/repo/target/debug/deps/libpredicates-8d6b8b7c794866b1.rmeta: tests/predicates.rs Cargo.toml

tests/predicates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
