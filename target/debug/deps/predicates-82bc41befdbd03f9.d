/root/repo/target/debug/deps/predicates-82bc41befdbd03f9.d: tests/predicates.rs

/root/repo/target/debug/deps/libpredicates-82bc41befdbd03f9.rmeta: tests/predicates.rs

tests/predicates.rs:
