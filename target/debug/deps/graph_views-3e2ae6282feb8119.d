/root/repo/target/debug/deps/graph_views-3e2ae6282feb8119.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgraph_views-3e2ae6282feb8119.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
