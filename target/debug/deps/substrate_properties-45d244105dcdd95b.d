/root/repo/target/debug/deps/substrate_properties-45d244105dcdd95b.d: tests/substrate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate_properties-45d244105dcdd95b.rmeta: tests/substrate_properties.rs Cargo.toml

tests/substrate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
