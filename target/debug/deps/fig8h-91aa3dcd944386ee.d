/root/repo/target/debug/deps/fig8h-91aa3dcd944386ee.d: crates/bench/benches/fig8h.rs

/root/repo/target/debug/deps/fig8h-91aa3dcd944386ee: crates/bench/benches/fig8h.rs

crates/bench/benches/fig8h.rs:
