/root/repo/target/debug/deps/fig8j-73121279a9b07b82.d: crates/bench/benches/fig8j.rs Cargo.toml

/root/repo/target/debug/deps/libfig8j-73121279a9b07b82.rmeta: crates/bench/benches/fig8j.rs Cargo.toml

crates/bench/benches/fig8j.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
