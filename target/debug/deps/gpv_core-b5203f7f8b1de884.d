/root/repo/target/debug/deps/gpv_core-b5203f7f8b1de884.d: crates/core/src/lib.rs crates/core/src/bcontainment.rs crates/core/src/bmatchjoin.rs crates/core/src/bview.rs crates/core/src/containment.rs crates/core/src/cost.rs crates/core/src/dualjoin.rs crates/core/src/engine.rs crates/core/src/maintenance.rs crates/core/src/matchjoin.rs crates/core/src/minimal.rs crates/core/src/minimize.rs crates/core/src/minimum.rs crates/core/src/parallel.rs crates/core/src/partial.rs crates/core/src/plan.rs crates/core/src/selection.rs crates/core/src/storage.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libgpv_core-b5203f7f8b1de884.rlib: crates/core/src/lib.rs crates/core/src/bcontainment.rs crates/core/src/bmatchjoin.rs crates/core/src/bview.rs crates/core/src/containment.rs crates/core/src/cost.rs crates/core/src/dualjoin.rs crates/core/src/engine.rs crates/core/src/maintenance.rs crates/core/src/matchjoin.rs crates/core/src/minimal.rs crates/core/src/minimize.rs crates/core/src/minimum.rs crates/core/src/parallel.rs crates/core/src/partial.rs crates/core/src/plan.rs crates/core/src/selection.rs crates/core/src/storage.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libgpv_core-b5203f7f8b1de884.rmeta: crates/core/src/lib.rs crates/core/src/bcontainment.rs crates/core/src/bmatchjoin.rs crates/core/src/bview.rs crates/core/src/containment.rs crates/core/src/cost.rs crates/core/src/dualjoin.rs crates/core/src/engine.rs crates/core/src/maintenance.rs crates/core/src/matchjoin.rs crates/core/src/minimal.rs crates/core/src/minimize.rs crates/core/src/minimum.rs crates/core/src/parallel.rs crates/core/src/partial.rs crates/core/src/plan.rs crates/core/src/selection.rs crates/core/src/storage.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/bcontainment.rs:
crates/core/src/bmatchjoin.rs:
crates/core/src/bview.rs:
crates/core/src/containment.rs:
crates/core/src/cost.rs:
crates/core/src/dualjoin.rs:
crates/core/src/engine.rs:
crates/core/src/maintenance.rs:
crates/core/src/matchjoin.rs:
crates/core/src/minimal.rs:
crates/core/src/minimize.rs:
crates/core/src/minimum.rs:
crates/core/src/parallel.rs:
crates/core/src/partial.rs:
crates/core/src/plan.rs:
crates/core/src/selection.rs:
crates/core/src/storage.rs:
crates/core/src/view.rs:
