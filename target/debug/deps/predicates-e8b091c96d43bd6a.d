/root/repo/target/debug/deps/predicates-e8b091c96d43bd6a.d: tests/predicates.rs

/root/repo/target/debug/deps/predicates-e8b091c96d43bd6a: tests/predicates.rs

tests/predicates.rs:
