/root/repo/target/debug/deps/graph_views-243300e8752fb69d.d: src/lib.rs

/root/repo/target/debug/deps/libgraph_views-243300e8752fb69d.rmeta: src/lib.rs

src/lib.rs:
