/root/repo/target/debug/deps/ablations-4cd4f10e114fedb7.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-4cd4f10e114fedb7.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
