/root/repo/target/debug/deps/fig8h-9c1d7ddffb656f97.d: crates/bench/benches/fig8h.rs Cargo.toml

/root/repo/target/debug/deps/libfig8h-9c1d7ddffb656f97.rmeta: crates/bench/benches/fig8h.rs Cargo.toml

crates/bench/benches/fig8h.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
