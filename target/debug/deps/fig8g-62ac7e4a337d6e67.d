/root/repo/target/debug/deps/fig8g-62ac7e4a337d6e67.d: crates/bench/benches/fig8g.rs

/root/repo/target/debug/deps/fig8g-62ac7e4a337d6e67: crates/bench/benches/fig8g.rs

crates/bench/benches/fig8g.rs:
