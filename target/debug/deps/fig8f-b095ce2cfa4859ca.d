/root/repo/target/debug/deps/fig8f-b095ce2cfa4859ca.d: crates/bench/benches/fig8f.rs

/root/repo/target/debug/deps/libfig8f-b095ce2cfa4859ca.rmeta: crates/bench/benches/fig8f.rs

crates/bench/benches/fig8f.rs:
