/root/repo/target/debug/deps/engine-cfedc694c202ae4b.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-cfedc694c202ae4b: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
