/root/repo/target/debug/deps/fig8i-f6e1f602e6d628fd.d: crates/bench/benches/fig8i.rs

/root/repo/target/debug/deps/libfig8i-f6e1f602e6d628fd.rmeta: crates/bench/benches/fig8i.rs

crates/bench/benches/fig8i.rs:
