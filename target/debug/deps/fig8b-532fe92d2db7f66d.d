/root/repo/target/debug/deps/fig8b-532fe92d2db7f66d.d: crates/bench/benches/fig8b.rs

/root/repo/target/debug/deps/libfig8b-532fe92d2db7f66d.rmeta: crates/bench/benches/fig8b.rs

crates/bench/benches/fig8b.rs:
