/root/repo/target/debug/deps/repro-475cbf71b9361c78.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-475cbf71b9361c78.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
