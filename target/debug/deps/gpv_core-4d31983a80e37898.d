/root/repo/target/debug/deps/gpv_core-4d31983a80e37898.d: crates/core/src/lib.rs crates/core/src/bcontainment.rs crates/core/src/bmatchjoin.rs crates/core/src/bview.rs crates/core/src/containment.rs crates/core/src/cost.rs crates/core/src/dualjoin.rs crates/core/src/engine.rs crates/core/src/maintenance.rs crates/core/src/matchjoin.rs crates/core/src/minimal.rs crates/core/src/minimize.rs crates/core/src/minimum.rs crates/core/src/parallel.rs crates/core/src/partial.rs crates/core/src/plan.rs crates/core/src/selection.rs crates/core/src/storage.rs crates/core/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libgpv_core-4d31983a80e37898.rmeta: crates/core/src/lib.rs crates/core/src/bcontainment.rs crates/core/src/bmatchjoin.rs crates/core/src/bview.rs crates/core/src/containment.rs crates/core/src/cost.rs crates/core/src/dualjoin.rs crates/core/src/engine.rs crates/core/src/maintenance.rs crates/core/src/matchjoin.rs crates/core/src/minimal.rs crates/core/src/minimize.rs crates/core/src/minimum.rs crates/core/src/parallel.rs crates/core/src/partial.rs crates/core/src/plan.rs crates/core/src/selection.rs crates/core/src/storage.rs crates/core/src/view.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bcontainment.rs:
crates/core/src/bmatchjoin.rs:
crates/core/src/bview.rs:
crates/core/src/containment.rs:
crates/core/src/cost.rs:
crates/core/src/dualjoin.rs:
crates/core/src/engine.rs:
crates/core/src/maintenance.rs:
crates/core/src/matchjoin.rs:
crates/core/src/minimal.rs:
crates/core/src/minimize.rs:
crates/core/src/minimum.rs:
crates/core/src/parallel.rs:
crates/core/src/partial.rs:
crates/core/src/plan.rs:
crates/core/src/selection.rs:
crates/core/src/storage.rs:
crates/core/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
