/root/repo/target/debug/deps/graph_views-52780c851a123ce4.d: src/lib.rs

/root/repo/target/debug/deps/graph_views-52780c851a123ce4: src/lib.rs

src/lib.rs:
