/root/repo/target/debug/deps/gpv_graph-41929699262218fc.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs

/root/repo/target/debug/deps/libgpv_graph-41929699262218fc.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/builder.rs:
crates/graph/src/graph.rs:
crates/graph/src/interner.rs:
crates/graph/src/io.rs:
crates/graph/src/scc.rs:
crates/graph/src/stats.rs:
crates/graph/src/traverse.rs:
crates/graph/src/value.rs:
