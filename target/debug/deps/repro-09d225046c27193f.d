/root/repo/target/debug/deps/repro-09d225046c27193f.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-09d225046c27193f: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
