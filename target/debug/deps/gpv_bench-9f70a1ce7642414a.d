/root/repo/target/debug/deps/gpv_bench-9f70a1ce7642414a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgpv_bench-9f70a1ce7642414a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
