/root/repo/target/debug/deps/minimize-1fbe0d92ef498823.d: tests/minimize.rs Cargo.toml

/root/repo/target/debug/deps/libminimize-1fbe0d92ef498823.rmeta: tests/minimize.rs Cargo.toml

tests/minimize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
