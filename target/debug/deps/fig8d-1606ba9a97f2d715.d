/root/repo/target/debug/deps/fig8d-1606ba9a97f2d715.d: crates/bench/benches/fig8d.rs

/root/repo/target/debug/deps/fig8d-1606ba9a97f2d715: crates/bench/benches/fig8d.rs

crates/bench/benches/fig8d.rs:
