/root/repo/target/debug/deps/extensions-cebac191b23434bd.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/libextensions-cebac191b23434bd.rmeta: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
