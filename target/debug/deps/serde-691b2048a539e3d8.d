/root/repo/target/debug/deps/serde-691b2048a539e3d8.d: shims/serde/src/lib.rs shims/serde/src/value.rs

/root/repo/target/debug/deps/libserde-691b2048a539e3d8.rmeta: shims/serde/src/lib.rs shims/serde/src/value.rs

shims/serde/src/lib.rs:
shims/serde/src/value.rs:
