/root/repo/target/debug/deps/cli-84cf3b74e09b5dcc.d: tests/cli.rs

/root/repo/target/debug/deps/cli-84cf3b74e09b5dcc: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_gpv=/root/repo/target/debug/gpv
