/root/repo/target/debug/deps/fig8l-08fde0ee16693f7e.d: crates/bench/benches/fig8l.rs

/root/repo/target/debug/deps/libfig8l-08fde0ee16693f7e.rmeta: crates/bench/benches/fig8l.rs

crates/bench/benches/fig8l.rs:
