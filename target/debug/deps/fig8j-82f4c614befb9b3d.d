/root/repo/target/debug/deps/fig8j-82f4c614befb9b3d.d: crates/bench/benches/fig8j.rs

/root/repo/target/debug/deps/libfig8j-82f4c614befb9b3d.rmeta: crates/bench/benches/fig8j.rs

crates/bench/benches/fig8j.rs:
