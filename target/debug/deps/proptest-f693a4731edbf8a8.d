/root/repo/target/debug/deps/proptest-f693a4731edbf8a8.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

/root/repo/target/debug/deps/proptest-f693a4731edbf8a8: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
