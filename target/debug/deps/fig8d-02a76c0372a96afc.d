/root/repo/target/debug/deps/fig8d-02a76c0372a96afc.d: crates/bench/benches/fig8d.rs

/root/repo/target/debug/deps/libfig8d-02a76c0372a96afc.rmeta: crates/bench/benches/fig8d.rs

crates/bench/benches/fig8d.rs:
