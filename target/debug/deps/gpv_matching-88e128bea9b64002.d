/root/repo/target/debug/deps/gpv_matching-88e128bea9b64002.d: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

/root/repo/target/debug/deps/libgpv_matching-88e128bea9b64002.rmeta: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

crates/matching/src/lib.rs:
crates/matching/src/bounded.rs:
crates/matching/src/bounded_pattern_sim.rs:
crates/matching/src/dual.rs:
crates/matching/src/pattern_sim.rs:
crates/matching/src/result.rs:
crates/matching/src/simulation.rs:
crates/matching/src/strong.rs:
