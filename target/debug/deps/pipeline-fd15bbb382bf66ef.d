/root/repo/target/debug/deps/pipeline-fd15bbb382bf66ef.d: tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-fd15bbb382bf66ef.rmeta: tests/pipeline.rs

tests/pipeline.rs:
