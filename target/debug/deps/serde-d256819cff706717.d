/root/repo/target/debug/deps/serde-d256819cff706717.d: shims/serde/src/lib.rs shims/serde/src/value.rs

/root/repo/target/debug/deps/libserde-d256819cff706717.rmeta: shims/serde/src/lib.rs shims/serde/src/value.rs

shims/serde/src/lib.rs:
shims/serde/src/value.rs:
