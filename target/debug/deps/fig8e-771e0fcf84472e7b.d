/root/repo/target/debug/deps/fig8e-771e0fcf84472e7b.d: crates/bench/benches/fig8e.rs

/root/repo/target/debug/deps/libfig8e-771e0fcf84472e7b.rmeta: crates/bench/benches/fig8e.rs

crates/bench/benches/fig8e.rs:
