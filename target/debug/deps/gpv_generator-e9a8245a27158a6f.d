/root/repo/target/debug/deps/gpv_generator-e9a8245a27158a6f.d: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

/root/repo/target/debug/deps/gpv_generator-e9a8245a27158a6f: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

crates/generator/src/lib.rs:
crates/generator/src/datasets.rs:
crates/generator/src/patterns.rs:
crates/generator/src/synthetic.rs:
crates/generator/src/views.rs:
crates/generator/src/youtube_views.rs:
