/root/repo/target/debug/deps/theorem_properties-79ebda65f739754f.d: tests/theorem_properties.rs

/root/repo/target/debug/deps/theorem_properties-79ebda65f739754f: tests/theorem_properties.rs

tests/theorem_properties.rs:
