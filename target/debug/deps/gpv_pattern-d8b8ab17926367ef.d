/root/repo/target/debug/deps/gpv_pattern-d8b8ab17926367ef.d: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs Cargo.toml

/root/repo/target/debug/deps/libgpv_pattern-d8b8ab17926367ef.rmeta: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs Cargo.toml

crates/pattern/src/lib.rs:
crates/pattern/src/bounded.rs:
crates/pattern/src/builder.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/predicate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
