/root/repo/target/debug/deps/serde_roundtrip-3b69b5bb85c746e0.d: tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-3b69b5bb85c746e0.rmeta: tests/serde_roundtrip.rs Cargo.toml

tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
