/root/repo/target/debug/deps/theorem_properties-39fae67b1c485b11.d: tests/theorem_properties.rs

/root/repo/target/debug/deps/libtheorem_properties-39fae67b1c485b11.rmeta: tests/theorem_properties.rs

tests/theorem_properties.rs:
