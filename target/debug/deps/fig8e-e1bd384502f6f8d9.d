/root/repo/target/debug/deps/fig8e-e1bd384502f6f8d9.d: crates/bench/benches/fig8e.rs Cargo.toml

/root/repo/target/debug/deps/libfig8e-e1bd384502f6f8d9.rmeta: crates/bench/benches/fig8e.rs Cargo.toml

crates/bench/benches/fig8e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
