/root/repo/target/debug/deps/fig8c-415430ffa6d0f757.d: crates/bench/benches/fig8c.rs

/root/repo/target/debug/deps/fig8c-415430ffa6d0f757: crates/bench/benches/fig8c.rs

crates/bench/benches/fig8c.rs:
