/root/repo/target/debug/deps/graph_views-7459872104dd84ad.d: src/lib.rs

/root/repo/target/debug/deps/libgraph_views-7459872104dd84ad.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraph_views-7459872104dd84ad.rmeta: src/lib.rs

src/lib.rs:
