/root/repo/target/debug/deps/fig8j-f1ce03e85b34c92e.d: crates/bench/benches/fig8j.rs

/root/repo/target/debug/deps/fig8j-f1ce03e85b34c92e: crates/bench/benches/fig8j.rs

crates/bench/benches/fig8j.rs:
