/root/repo/target/debug/deps/gpv-b24f1b51d8621c0f.d: src/bin/gpv.rs Cargo.toml

/root/repo/target/debug/deps/libgpv-b24f1b51d8621c0f.rmeta: src/bin/gpv.rs Cargo.toml

src/bin/gpv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
