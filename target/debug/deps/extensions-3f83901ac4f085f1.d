/root/repo/target/debug/deps/extensions-3f83901ac4f085f1.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/extensions-3f83901ac4f085f1: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
