/root/repo/target/debug/deps/substrate_properties-beb5578f12d40151.d: tests/substrate_properties.rs

/root/repo/target/debug/deps/libsubstrate_properties-beb5578f12d40151.rmeta: tests/substrate_properties.rs

tests/substrate_properties.rs:
