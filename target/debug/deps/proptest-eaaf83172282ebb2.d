/root/repo/target/debug/deps/proptest-eaaf83172282ebb2.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-eaaf83172282ebb2.rmeta: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
