/root/repo/target/debug/deps/fig8b-24979011e1319306.d: crates/bench/benches/fig8b.rs Cargo.toml

/root/repo/target/debug/deps/libfig8b-24979011e1319306.rmeta: crates/bench/benches/fig8b.rs Cargo.toml

crates/bench/benches/fig8b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
