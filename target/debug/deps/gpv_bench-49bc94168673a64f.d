/root/repo/target/debug/deps/gpv_bench-49bc94168673a64f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/gpv_bench-49bc94168673a64f: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
