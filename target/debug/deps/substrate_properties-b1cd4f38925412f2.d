/root/repo/target/debug/deps/substrate_properties-b1cd4f38925412f2.d: tests/substrate_properties.rs

/root/repo/target/debug/deps/substrate_properties-b1cd4f38925412f2: tests/substrate_properties.rs

tests/substrate_properties.rs:
