/root/repo/target/debug/deps/gpv_bench-537076ed5762ad48.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgpv_bench-537076ed5762ad48.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgpv_bench-537076ed5762ad48.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
