/root/repo/target/debug/deps/pipeline-2b37a2bb611be757.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-2b37a2bb611be757.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
