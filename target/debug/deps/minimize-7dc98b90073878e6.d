/root/repo/target/debug/deps/minimize-7dc98b90073878e6.d: tests/minimize.rs

/root/repo/target/debug/deps/minimize-7dc98b90073878e6: tests/minimize.rs

tests/minimize.rs:
