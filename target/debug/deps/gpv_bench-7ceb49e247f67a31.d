/root/repo/target/debug/deps/gpv_bench-7ceb49e247f67a31.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libgpv_bench-7ceb49e247f67a31.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
