/root/repo/target/debug/deps/gpv-ba20003536a15438.d: src/bin/gpv.rs

/root/repo/target/debug/deps/gpv-ba20003536a15438: src/bin/gpv.rs

src/bin/gpv.rs:
