/root/repo/target/debug/deps/paper_examples-72001ce4a764c298.d: tests/paper_examples.rs

/root/repo/target/debug/deps/libpaper_examples-72001ce4a764c298.rmeta: tests/paper_examples.rs

tests/paper_examples.rs:
