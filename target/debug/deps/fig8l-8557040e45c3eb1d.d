/root/repo/target/debug/deps/fig8l-8557040e45c3eb1d.d: crates/bench/benches/fig8l.rs

/root/repo/target/debug/deps/fig8l-8557040e45c3eb1d: crates/bench/benches/fig8l.rs

crates/bench/benches/fig8l.rs:
