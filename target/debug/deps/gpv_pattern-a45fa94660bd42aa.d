/root/repo/target/debug/deps/gpv_pattern-a45fa94660bd42aa.d: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

/root/repo/target/debug/deps/libgpv_pattern-a45fa94660bd42aa.rmeta: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

crates/pattern/src/lib.rs:
crates/pattern/src/bounded.rs:
crates/pattern/src/builder.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/predicate.rs:
