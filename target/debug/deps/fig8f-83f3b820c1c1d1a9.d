/root/repo/target/debug/deps/fig8f-83f3b820c1c1d1a9.d: crates/bench/benches/fig8f.rs Cargo.toml

/root/repo/target/debug/deps/libfig8f-83f3b820c1c1d1a9.rmeta: crates/bench/benches/fig8f.rs Cargo.toml

crates/bench/benches/fig8f.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
