/root/repo/target/debug/deps/fig8f-91d0ceae28c72389.d: crates/bench/benches/fig8f.rs

/root/repo/target/debug/deps/fig8f-91d0ceae28c72389: crates/bench/benches/fig8f.rs

crates/bench/benches/fig8f.rs:
