/root/repo/target/debug/deps/fig8i-f4a478f93dedf177.d: crates/bench/benches/fig8i.rs Cargo.toml

/root/repo/target/debug/deps/libfig8i-f4a478f93dedf177.rmeta: crates/bench/benches/fig8i.rs Cargo.toml

crates/bench/benches/fig8i.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
