/root/repo/target/debug/deps/fig8d-0feb165825f70e5c.d: crates/bench/benches/fig8d.rs Cargo.toml

/root/repo/target/debug/deps/libfig8d-0feb165825f70e5c.rmeta: crates/bench/benches/fig8d.rs Cargo.toml

crates/bench/benches/fig8d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
