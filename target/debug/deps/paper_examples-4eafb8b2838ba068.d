/root/repo/target/debug/deps/paper_examples-4eafb8b2838ba068.d: tests/paper_examples.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_examples-4eafb8b2838ba068.rmeta: tests/paper_examples.rs Cargo.toml

tests/paper_examples.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
