/root/repo/target/debug/deps/engine-ab9dedcc2a23556f.d: tests/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-ab9dedcc2a23556f.rmeta: tests/engine.rs Cargo.toml

tests/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
