/root/repo/target/debug/deps/gpv_generator-3047ea95fbe1cd62.d: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

/root/repo/target/debug/deps/libgpv_generator-3047ea95fbe1cd62.rlib: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

/root/repo/target/debug/deps/libgpv_generator-3047ea95fbe1cd62.rmeta: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

crates/generator/src/lib.rs:
crates/generator/src/datasets.rs:
crates/generator/src/patterns.rs:
crates/generator/src/synthetic.rs:
crates/generator/src/views.rs:
crates/generator/src/youtube_views.rs:
