/root/repo/target/debug/deps/repro-c2b9b52ad42d0ecc.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-c2b9b52ad42d0ecc: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
