/root/repo/target/debug/deps/engine-4e2d639e10423099.d: tests/engine.rs

/root/repo/target/debug/deps/libengine-4e2d639e10423099.rmeta: tests/engine.rs

tests/engine.rs:
