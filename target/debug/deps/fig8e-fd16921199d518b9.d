/root/repo/target/debug/deps/fig8e-fd16921199d518b9.d: crates/bench/benches/fig8e.rs

/root/repo/target/debug/deps/fig8e-fd16921199d518b9: crates/bench/benches/fig8e.rs

crates/bench/benches/fig8e.rs:
