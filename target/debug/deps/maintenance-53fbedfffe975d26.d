/root/repo/target/debug/deps/maintenance-53fbedfffe975d26.d: tests/maintenance.rs

/root/repo/target/debug/deps/libmaintenance-53fbedfffe975d26.rmeta: tests/maintenance.rs

tests/maintenance.rs:
