/root/repo/target/debug/deps/fig8a-b9dcc86b54de6cb0.d: crates/bench/benches/fig8a.rs

/root/repo/target/debug/deps/libfig8a-b9dcc86b54de6cb0.rmeta: crates/bench/benches/fig8a.rs

crates/bench/benches/fig8a.rs:
