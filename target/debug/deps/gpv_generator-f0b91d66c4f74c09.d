/root/repo/target/debug/deps/gpv_generator-f0b91d66c4f74c09.d: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

/root/repo/target/debug/deps/libgpv_generator-f0b91d66c4f74c09.rmeta: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

crates/generator/src/lib.rs:
crates/generator/src/datasets.rs:
crates/generator/src/patterns.rs:
crates/generator/src/synthetic.rs:
crates/generator/src/views.rs:
crates/generator/src/youtube_views.rs:
