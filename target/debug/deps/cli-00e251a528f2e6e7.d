/root/repo/target/debug/deps/cli-00e251a528f2e6e7.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-00e251a528f2e6e7.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_gpv=placeholder:gpv
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
