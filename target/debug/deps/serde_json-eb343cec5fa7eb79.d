/root/repo/target/debug/deps/serde_json-eb343cec5fa7eb79.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-eb343cec5fa7eb79.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-eb343cec5fa7eb79.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
