/root/repo/target/debug/deps/fig8l-408d52f3c119ca47.d: crates/bench/benches/fig8l.rs Cargo.toml

/root/repo/target/debug/deps/libfig8l-408d52f3c119ca47.rmeta: crates/bench/benches/fig8l.rs Cargo.toml

crates/bench/benches/fig8l.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
