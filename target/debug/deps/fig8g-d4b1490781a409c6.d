/root/repo/target/debug/deps/fig8g-d4b1490781a409c6.d: crates/bench/benches/fig8g.rs

/root/repo/target/debug/deps/libfig8g-d4b1490781a409c6.rmeta: crates/bench/benches/fig8g.rs

crates/bench/benches/fig8g.rs:
