/root/repo/target/debug/deps/gpv-3c1a7e8e7a6e57fb.d: src/bin/gpv.rs

/root/repo/target/debug/deps/gpv-3c1a7e8e7a6e57fb: src/bin/gpv.rs

src/bin/gpv.rs:
