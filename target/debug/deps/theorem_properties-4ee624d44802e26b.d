/root/repo/target/debug/deps/theorem_properties-4ee624d44802e26b.d: tests/theorem_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtheorem_properties-4ee624d44802e26b.rmeta: tests/theorem_properties.rs Cargo.toml

tests/theorem_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
