/root/repo/target/debug/deps/fig8c-3015689b7bf541a7.d: crates/bench/benches/fig8c.rs Cargo.toml

/root/repo/target/debug/deps/libfig8c-3015689b7bf541a7.rmeta: crates/bench/benches/fig8c.rs Cargo.toml

crates/bench/benches/fig8c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
