/root/repo/target/debug/deps/fig8a-b3a4f69e413e116b.d: crates/bench/benches/fig8a.rs

/root/repo/target/debug/deps/fig8a-b3a4f69e413e116b: crates/bench/benches/fig8a.rs

crates/bench/benches/fig8a.rs:
