/root/repo/target/debug/deps/gpv_pattern-416871b5ab5f3173.d: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

/root/repo/target/debug/deps/gpv_pattern-416871b5ab5f3173: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

crates/pattern/src/lib.rs:
crates/pattern/src/bounded.rs:
crates/pattern/src/builder.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/predicate.rs:
