/root/repo/target/debug/deps/gpv_generator-cc0d83b1639e562a.d: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs Cargo.toml

/root/repo/target/debug/deps/libgpv_generator-cc0d83b1639e562a.rmeta: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs Cargo.toml

crates/generator/src/lib.rs:
crates/generator/src/datasets.rs:
crates/generator/src/patterns.rs:
crates/generator/src/synthetic.rs:
crates/generator/src/views.rs:
crates/generator/src/youtube_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
