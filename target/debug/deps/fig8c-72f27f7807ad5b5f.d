/root/repo/target/debug/deps/fig8c-72f27f7807ad5b5f.d: crates/bench/benches/fig8c.rs

/root/repo/target/debug/deps/libfig8c-72f27f7807ad5b5f.rmeta: crates/bench/benches/fig8c.rs

crates/bench/benches/fig8c.rs:
