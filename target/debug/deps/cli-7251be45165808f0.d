/root/repo/target/debug/deps/cli-7251be45165808f0.d: tests/cli.rs

/root/repo/target/debug/deps/libcli-7251be45165808f0.rmeta: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_gpv=placeholder:gpv
