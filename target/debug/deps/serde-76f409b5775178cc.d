/root/repo/target/debug/deps/serde-76f409b5775178cc.d: shims/serde/src/lib.rs shims/serde/src/value.rs

/root/repo/target/debug/deps/libserde-76f409b5775178cc.rlib: shims/serde/src/lib.rs shims/serde/src/value.rs

/root/repo/target/debug/deps/libserde-76f409b5775178cc.rmeta: shims/serde/src/lib.rs shims/serde/src/value.rs

shims/serde/src/lib.rs:
shims/serde/src/value.rs:
