/root/repo/target/debug/deps/pipeline-2c782e55585634f1.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-2c782e55585634f1: tests/pipeline.rs

tests/pipeline.rs:
