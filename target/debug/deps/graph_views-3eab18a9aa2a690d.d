/root/repo/target/debug/deps/graph_views-3eab18a9aa2a690d.d: src/lib.rs

/root/repo/target/debug/deps/libgraph_views-3eab18a9aa2a690d.rmeta: src/lib.rs

src/lib.rs:
