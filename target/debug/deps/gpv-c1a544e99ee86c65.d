/root/repo/target/debug/deps/gpv-c1a544e99ee86c65.d: src/bin/gpv.rs

/root/repo/target/debug/deps/gpv-c1a544e99ee86c65: src/bin/gpv.rs

src/bin/gpv.rs:
