/root/repo/target/debug/deps/fig8g-b38328e83fef8fa1.d: crates/bench/benches/fig8g.rs Cargo.toml

/root/repo/target/debug/deps/libfig8g-b38328e83fef8fa1.rmeta: crates/bench/benches/fig8g.rs Cargo.toml

crates/bench/benches/fig8g.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
