/root/repo/target/debug/deps/gpv-7913e0c5fe833869.d: src/bin/gpv.rs

/root/repo/target/debug/deps/libgpv-7913e0c5fe833869.rmeta: src/bin/gpv.rs

src/bin/gpv.rs:
