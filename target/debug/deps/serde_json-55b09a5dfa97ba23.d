/root/repo/target/debug/deps/serde_json-55b09a5dfa97ba23.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-55b09a5dfa97ba23.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
