/root/repo/target/debug/deps/proptest-aa6d4e7cd15a2418.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-aa6d4e7cd15a2418.rmeta: shims/proptest/src/lib.rs shims/proptest/src/collection.rs Cargo.toml

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
