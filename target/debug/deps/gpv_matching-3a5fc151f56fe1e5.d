/root/repo/target/debug/deps/gpv_matching-3a5fc151f56fe1e5.d: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs Cargo.toml

/root/repo/target/debug/deps/libgpv_matching-3a5fc151f56fe1e5.rmeta: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs Cargo.toml

crates/matching/src/lib.rs:
crates/matching/src/bounded.rs:
crates/matching/src/bounded_pattern_sim.rs:
crates/matching/src/dual.rs:
crates/matching/src/pattern_sim.rs:
crates/matching/src/result.rs:
crates/matching/src/simulation.rs:
crates/matching/src/strong.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
