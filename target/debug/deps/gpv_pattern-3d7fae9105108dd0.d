/root/repo/target/debug/deps/gpv_pattern-3d7fae9105108dd0.d: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

/root/repo/target/debug/deps/libgpv_pattern-3d7fae9105108dd0.rlib: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

/root/repo/target/debug/deps/libgpv_pattern-3d7fae9105108dd0.rmeta: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

crates/pattern/src/lib.rs:
crates/pattern/src/bounded.rs:
crates/pattern/src/builder.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/predicate.rs:
