/root/repo/target/debug/deps/gpv_bench-8c2f14ae465c500a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgpv_bench-8c2f14ae465c500a.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgpv_bench-8c2f14ae465c500a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
