/root/repo/target/debug/deps/proptest-4dc05b67f4216eff.d: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

/root/repo/target/debug/deps/libproptest-4dc05b67f4216eff.rmeta: shims/proptest/src/lib.rs shims/proptest/src/collection.rs

shims/proptest/src/lib.rs:
shims/proptest/src/collection.rs:
