/root/repo/target/debug/deps/serde_roundtrip-b56f94471af8ff99.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-b56f94471af8ff99: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
