/root/repo/target/debug/deps/fig8k-5103008d6f32c645.d: crates/bench/benches/fig8k.rs

/root/repo/target/debug/deps/fig8k-5103008d6f32c645: crates/bench/benches/fig8k.rs

crates/bench/benches/fig8k.rs:
