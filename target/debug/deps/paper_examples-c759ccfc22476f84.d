/root/repo/target/debug/deps/paper_examples-c759ccfc22476f84.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-c759ccfc22476f84: tests/paper_examples.rs

tests/paper_examples.rs:
