/root/repo/target/debug/deps/fig8i-b5a6c5a4be70028e.d: crates/bench/benches/fig8i.rs

/root/repo/target/debug/deps/fig8i-b5a6c5a4be70028e: crates/bench/benches/fig8i.rs

crates/bench/benches/fig8i.rs:
