/root/repo/target/debug/deps/gpv_graph-6c2431a8bdd17d18.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libgpv_graph-6c2431a8bdd17d18.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/builder.rs:
crates/graph/src/graph.rs:
crates/graph/src/interner.rs:
crates/graph/src/io.rs:
crates/graph/src/scc.rs:
crates/graph/src/stats.rs:
crates/graph/src/traverse.rs:
crates/graph/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
