/root/repo/target/debug/deps/fig8h-1099d9495090d795.d: crates/bench/benches/fig8h.rs

/root/repo/target/debug/deps/libfig8h-1099d9495090d795.rmeta: crates/bench/benches/fig8h.rs

crates/bench/benches/fig8h.rs:
