/root/repo/target/debug/deps/fig8k-3bad18960cd89366.d: crates/bench/benches/fig8k.rs

/root/repo/target/debug/deps/libfig8k-3bad18960cd89366.rmeta: crates/bench/benches/fig8k.rs

crates/bench/benches/fig8k.rs:
