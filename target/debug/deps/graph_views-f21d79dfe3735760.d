/root/repo/target/debug/deps/graph_views-f21d79dfe3735760.d: src/lib.rs

/root/repo/target/debug/deps/libgraph_views-f21d79dfe3735760.rlib: src/lib.rs

/root/repo/target/debug/deps/libgraph_views-f21d79dfe3735760.rmeta: src/lib.rs

src/lib.rs:
