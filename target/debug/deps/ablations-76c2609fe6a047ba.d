/root/repo/target/debug/deps/ablations-76c2609fe6a047ba.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-76c2609fe6a047ba: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
