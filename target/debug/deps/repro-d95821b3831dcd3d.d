/root/repo/target/debug/deps/repro-d95821b3831dcd3d.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-d95821b3831dcd3d: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
