/root/repo/target/debug/deps/minimize-a252ea4c8ca6458c.d: tests/minimize.rs

/root/repo/target/debug/deps/libminimize-a252ea4c8ca6458c.rmeta: tests/minimize.rs

tests/minimize.rs:
