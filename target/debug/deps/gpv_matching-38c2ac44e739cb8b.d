/root/repo/target/debug/deps/gpv_matching-38c2ac44e739cb8b.d: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

/root/repo/target/debug/deps/libgpv_matching-38c2ac44e739cb8b.rmeta: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

crates/matching/src/lib.rs:
crates/matching/src/bounded.rs:
crates/matching/src/bounded_pattern_sim.rs:
crates/matching/src/dual.rs:
crates/matching/src/pattern_sim.rs:
crates/matching/src/result.rs:
crates/matching/src/simulation.rs:
crates/matching/src/strong.rs:
