/root/repo/target/debug/deps/gpv_bench-5d13413562b4043e.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libgpv_bench-5d13413562b4043e.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
