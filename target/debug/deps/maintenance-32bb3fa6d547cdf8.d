/root/repo/target/debug/deps/maintenance-32bb3fa6d547cdf8.d: tests/maintenance.rs Cargo.toml

/root/repo/target/debug/deps/libmaintenance-32bb3fa6d547cdf8.rmeta: tests/maintenance.rs Cargo.toml

tests/maintenance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
