/root/repo/target/debug/deps/repro-2dea4e7cf0af1522.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/librepro-2dea4e7cf0af1522.rmeta: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
