/root/repo/target/debug/deps/fig8b-55e74edb5a6a043f.d: crates/bench/benches/fig8b.rs

/root/repo/target/debug/deps/fig8b-55e74edb5a6a043f: crates/bench/benches/fig8b.rs

crates/bench/benches/fig8b.rs:
