/root/repo/target/debug/deps/serde_json-816c07d74d2cbf87.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-816c07d74d2cbf87.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
