/root/repo/target/debug/deps/ablations-5e30b4d9aa9ac734.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-5e30b4d9aa9ac734.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
