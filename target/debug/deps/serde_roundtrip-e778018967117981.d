/root/repo/target/debug/deps/serde_roundtrip-e778018967117981.d: tests/serde_roundtrip.rs

/root/repo/target/debug/deps/libserde_roundtrip-e778018967117981.rmeta: tests/serde_roundtrip.rs

tests/serde_roundtrip.rs:
