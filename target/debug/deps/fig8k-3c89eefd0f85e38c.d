/root/repo/target/debug/deps/fig8k-3c89eefd0f85e38c.d: crates/bench/benches/fig8k.rs Cargo.toml

/root/repo/target/debug/deps/libfig8k-3c89eefd0f85e38c.rmeta: crates/bench/benches/fig8k.rs Cargo.toml

crates/bench/benches/fig8k.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
