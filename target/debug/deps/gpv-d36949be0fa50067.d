/root/repo/target/debug/deps/gpv-d36949be0fa50067.d: src/bin/gpv.rs

/root/repo/target/debug/deps/libgpv-d36949be0fa50067.rmeta: src/bin/gpv.rs

src/bin/gpv.rs:
