/root/repo/target/release/deps/gpv_matching-0ef3be53dff55a11.d: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

/root/repo/target/release/deps/libgpv_matching-0ef3be53dff55a11.rlib: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

/root/repo/target/release/deps/libgpv_matching-0ef3be53dff55a11.rmeta: crates/matching/src/lib.rs crates/matching/src/bounded.rs crates/matching/src/bounded_pattern_sim.rs crates/matching/src/dual.rs crates/matching/src/pattern_sim.rs crates/matching/src/result.rs crates/matching/src/simulation.rs crates/matching/src/strong.rs

crates/matching/src/lib.rs:
crates/matching/src/bounded.rs:
crates/matching/src/bounded_pattern_sim.rs:
crates/matching/src/dual.rs:
crates/matching/src/pattern_sim.rs:
crates/matching/src/result.rs:
crates/matching/src/simulation.rs:
crates/matching/src/strong.rs:
