/root/repo/target/release/deps/rand-24c2adaec1de883a.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-24c2adaec1de883a.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-24c2adaec1de883a.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
