/root/repo/target/release/deps/serde_json-a8908e3e49155218.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a8908e3e49155218.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a8908e3e49155218.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
