/root/repo/target/release/deps/gpv_generator-26afef92f3775d8e.d: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

/root/repo/target/release/deps/libgpv_generator-26afef92f3775d8e.rlib: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

/root/repo/target/release/deps/libgpv_generator-26afef92f3775d8e.rmeta: crates/generator/src/lib.rs crates/generator/src/datasets.rs crates/generator/src/patterns.rs crates/generator/src/synthetic.rs crates/generator/src/views.rs crates/generator/src/youtube_views.rs

crates/generator/src/lib.rs:
crates/generator/src/datasets.rs:
crates/generator/src/patterns.rs:
crates/generator/src/synthetic.rs:
crates/generator/src/views.rs:
crates/generator/src/youtube_views.rs:
