/root/repo/target/release/deps/gpv_pattern-4b83554a52420c9e.d: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

/root/repo/target/release/deps/libgpv_pattern-4b83554a52420c9e.rlib: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

/root/repo/target/release/deps/libgpv_pattern-4b83554a52420c9e.rmeta: crates/pattern/src/lib.rs crates/pattern/src/bounded.rs crates/pattern/src/builder.rs crates/pattern/src/parse.rs crates/pattern/src/pattern.rs crates/pattern/src/predicate.rs

crates/pattern/src/lib.rs:
crates/pattern/src/bounded.rs:
crates/pattern/src/builder.rs:
crates/pattern/src/parse.rs:
crates/pattern/src/pattern.rs:
crates/pattern/src/predicate.rs:
