/root/repo/target/release/deps/gpv_bench-dc8152262c10d05b.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libgpv_bench-dc8152262c10d05b.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libgpv_bench-dc8152262c10d05b.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/report.rs:
