/root/repo/target/release/deps/engine-95ae82915e3a9714.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-95ae82915e3a9714: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
