/root/repo/target/release/deps/gpv_graph-570f2fb31a285945.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs

/root/repo/target/release/deps/libgpv_graph-570f2fb31a285945.rlib: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs

/root/repo/target/release/deps/libgpv_graph-570f2fb31a285945.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/graph.rs crates/graph/src/interner.rs crates/graph/src/io.rs crates/graph/src/scc.rs crates/graph/src/stats.rs crates/graph/src/traverse.rs crates/graph/src/value.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/builder.rs:
crates/graph/src/graph.rs:
crates/graph/src/interner.rs:
crates/graph/src/io.rs:
crates/graph/src/scc.rs:
crates/graph/src/stats.rs:
crates/graph/src/traverse.rs:
crates/graph/src/value.rs:
