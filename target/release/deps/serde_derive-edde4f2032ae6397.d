/root/repo/target/release/deps/serde_derive-edde4f2032ae6397.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-edde4f2032ae6397.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
