/root/repo/target/release/deps/serde-12d00ff87f48ba14.d: shims/serde/src/lib.rs shims/serde/src/value.rs

/root/repo/target/release/deps/libserde-12d00ff87f48ba14.rlib: shims/serde/src/lib.rs shims/serde/src/value.rs

/root/repo/target/release/deps/libserde-12d00ff87f48ba14.rmeta: shims/serde/src/lib.rs shims/serde/src/value.rs

shims/serde/src/lib.rs:
shims/serde/src/value.rs:
