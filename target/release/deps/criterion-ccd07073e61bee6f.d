/root/repo/target/release/deps/criterion-ccd07073e61bee6f.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ccd07073e61bee6f.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-ccd07073e61bee6f.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
