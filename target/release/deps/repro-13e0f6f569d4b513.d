/root/repo/target/release/deps/repro-13e0f6f569d4b513.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-13e0f6f569d4b513: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
