/root/repo/target/release/deps/graph_views-2097366ba4d4a785.d: src/lib.rs

/root/repo/target/release/deps/libgraph_views-2097366ba4d4a785.rlib: src/lib.rs

/root/repo/target/release/deps/libgraph_views-2097366ba4d4a785.rmeta: src/lib.rs

src/lib.rs:
