/root/repo/target/release/deps/gpv-cef2f46ae20c0604.d: src/bin/gpv.rs

/root/repo/target/release/deps/gpv-cef2f46ae20c0604: src/bin/gpv.rs

src/bin/gpv.rs:
